"""Tests for Lemma 4.1 and Lemma 4.4 bounds.

The essential property of every bound is *soundness*: the Chernoff-Hoeffding
value must never fall below the true frequent probability (else the miner
would prune true results), and the Lemma 4.4 interval must always contain
the true frequent closed probability.  Both are property-tested against the
exact oracles.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    FrequentClosedProbabilityBounds,
    chernoff_hoeffding_frequency_bound,
    frequent_closed_probability_bounds,
    union_lower_bound,
    union_upper_bound,
)
from repro.core.events import ExtensionEventSystem
from repro.core.possible_worlds import exact_probabilities
from repro.core.support import SupportDistributionCache, frequent_probability
from tests.conftest import probability_lists, uncertain_databases


class TestChernoffHoeffding:
    @given(probability_lists(max_size=10), st.integers(min_value=1, max_value=12))
    @settings(max_examples=100, deadline=None)
    def test_never_below_true_probability(self, probabilities, min_sup):
        bound = chernoff_hoeffding_frequency_bound(
            sum(probabilities), len(probabilities), min_sup
        )
        exact = frequent_probability(probabilities, min_sup)
        assert bound >= exact - 1e-12

    def test_uninformative_when_mean_reaches_threshold(self):
        assert chernoff_hoeffding_frequency_bound(5.0, 10, 5) == 1.0
        assert chernoff_hoeffding_frequency_bound(6.0, 10, 5) == 1.0

    def test_small_when_mean_far_below_threshold(self):
        bound = chernoff_hoeffding_frequency_bound(1.0, 100, 60)
        assert bound < 1e-10

    def test_zero_mean(self):
        assert chernoff_hoeffding_frequency_bound(0.0, 10, 1) == 0.0

    def test_empty_database(self):
        assert chernoff_hoeffding_frequency_bound(0.0, 0, 1) == 0.0

    def test_bound_shrinks_with_threshold(self):
        bounds = [
            chernoff_hoeffding_frequency_bound(5.0, 50, min_sup)
            for min_sup in range(6, 30)
        ]
        assert all(a >= b - 1e-15 for a, b in zip(bounds, bounds[1:]))


def _events_for(db, itemset, min_sup):
    return ExtensionEventSystem(db, itemset, min_sup)


class TestUnionBounds:
    @given(
        uncertain_databases(max_transactions=6, max_items=5, allow_certain=False),
        st.sampled_from(["de_caen", "dawson_sankoff"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_lower_bounds_are_sound(self, db, method):
        events = _events_for(db, (db.items[0],), 2)
        if not events.events:
            return
        exact = events.union_probability_exact()
        lower = union_lower_bound(events.singleton_probabilities, events, method)
        assert lower <= exact + 1e-9

    @given(
        uncertain_databases(max_transactions=6, max_items=5, allow_certain=False),
        st.sampled_from(["kwerel", "boole"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_upper_bounds_are_sound(self, db, method):
        events = _events_for(db, (db.items[0],), 2)
        if not events.events:
            return
        exact = events.union_probability_exact()
        upper = union_upper_bound(events.singleton_probabilities, events, method)
        assert upper >= exact - 1e-9

    def test_single_event_bounds_are_tight(self, paper_db):
        events = _events_for(paper_db, "abc", 2)
        assert len(events) == 1
        singletons = events.singleton_probabilities
        assert union_lower_bound(singletons, events) == pytest.approx(0.0972)
        assert union_upper_bound(singletons, events) == pytest.approx(0.0972)

    def test_no_events_means_zero_union(self, paper_db):
        events = _events_for(paper_db, "abcd", 2)
        assert union_lower_bound([], events) == 0.0
        assert union_upper_bound([], events) == 0.0

    def test_unknown_methods_raise(self, paper_db):
        events = _events_for(paper_db, "abc", 2)
        with pytest.raises(ValueError):
            union_lower_bound(events.singleton_probabilities, events, "nope")
        with pytest.raises(ValueError):
            union_upper_bound(events.singleton_probabilities, events, "nope")


class TestFrequentClosedBounds:
    @given(uncertain_databases(max_transactions=6, max_items=5, allow_certain=False))
    @settings(max_examples=40, deadline=None)
    def test_interval_contains_truth(self, db):
        min_sup = 2
        itemset = (db.items[0],)
        cache = SupportDistributionCache(db, min_sup)
        frequent = cache.frequent_probability_of_itemset(itemset)
        events = _events_for(db, itemset, min_sup)
        bounds = frequent_closed_probability_bounds(frequent, events)
        truth = exact_probabilities(db, itemset, min_sup)["frequent_closed"]
        assert bounds.lower - 1e-9 <= truth <= bounds.upper + 1e-9

    def test_paper_example_is_pinched_exactly(self, paper_db):
        # {abc} has a single event, so Lemma 4.4 pins Pr_FC without sampling.
        cache = SupportDistributionCache(paper_db, 2)
        frequent = cache.frequent_probability_of_itemset("abc")
        events = _events_for(paper_db, "abc", 2)
        bounds = frequent_closed_probability_bounds(frequent, events)
        assert bounds.is_tight
        assert bounds.midpoint == pytest.approx(0.8754)

    def test_no_events_gives_frequent_probability(self, paper_db):
        cache = SupportDistributionCache(paper_db, 2)
        frequent = cache.frequent_probability_of_itemset("abcd")
        events = _events_for(paper_db, "abcd", 2)
        bounds = frequent_closed_probability_bounds(frequent, events)
        assert bounds.lower == bounds.upper == pytest.approx(0.81)

    def test_interval_is_ordered_and_clamped(self):
        bounds = FrequentClosedProbabilityBounds(lower=0.2, upper=0.7)
        assert bounds.midpoint == pytest.approx(0.45)
        assert not bounds.is_tight
