"""Shared hypothesis strategies, deterministic generators, settings profiles.

One package re-exports every input generator the property-test suites use,
so new backends/models/policies inherit well-shaped random inputs instead of
re-pasting ``@st.composite`` blocks per test module:

* :mod:`tests.strategies.databases` — exact transaction lists, tuple-level
  uncertain databases, attribute-level (item) databases, probability
  vectors, plus the :func:`databases_for_model` dispatch keyed by
  registered uncertainty-model name;
* :mod:`tests.strategies.streams` — uncertain transactions, transaction
  streams, and windowed streams (``(transactions, capacity)`` pairs) for
  the sliding-window suites;
* :mod:`tests.strategies.runtime_plans` — branch faults and fault plans for
  the supervised-runtime suites;
* :mod:`tests.strategies.profiles` — the ``dev`` / ``ci`` / ``nightly``
  hypothesis settings profiles, selected by ``REPRO_HYPOTHESIS_PROFILE``
  (loaded by ``tests/conftest.py`` at collection time).

The ``random_*`` helpers are the deterministic (``random.Random``-driven)
counterparts used by non-hypothesis loop tests; they produce the same
shapes as the strategies so both styles cover the same input space.
"""

from tests.strategies.databases import (
    ITEM_POOL,
    databases_for_model,
    exact_transactions,
    item_uncertain_databases,
    probability_lists,
    probability_vectors,
    random_uncertain_database,
    uncertain_databases,
)
from tests.strategies.profiles import (
    HYPOTHESIS_PROFILES,
    load_profile_from_env,
    register_profiles,
)
from tests.strategies.runtime_plans import branch_faults, fault_plans
from tests.strategies.streams import (
    make_transaction,
    random_uncertain_transactions,
    transaction_streams,
    uncertain_transactions,
    windowed_streams,
)

__all__ = [
    "HYPOTHESIS_PROFILES",
    "ITEM_POOL",
    "branch_faults",
    "databases_for_model",
    "exact_transactions",
    "fault_plans",
    "item_uncertain_databases",
    "load_profile_from_env",
    "make_transaction",
    "probability_lists",
    "probability_vectors",
    "random_uncertain_database",
    "random_uncertain_transactions",
    "register_profiles",
    "transaction_streams",
    "uncertain_databases",
    "uncertain_transactions",
    "windowed_streams",
]
