"""Database-shaped strategies: exact, tuple-uncertain, attribute-uncertain.

These were historically copy-pasted (with drift) across the support, tidset
backend, PMF, and item-model test modules; this module is now the single
source.  All strategies deliberately generate *small* instances — a handful
of transactions over a short item pool — so exponential possible-world
oracles stay cheap and hypothesis shrinks to readable counterexamples.
"""

from __future__ import annotations

import random

from hypothesis import strategies as st

from repro.core.database import UncertainDatabase
from repro.core.itemsets import canonical
from repro.uncertain.item_model import ItemUncertainDatabase

ITEM_POOL = "abcdef"


@st.composite
def exact_transactions(draw, max_transactions: int = 8, max_items: int = 5):
    """A small exact transaction database (list of item tuples)."""
    num_items = draw(st.integers(min_value=1, max_value=max_items))
    items = ITEM_POOL[:num_items]
    num_transactions = draw(st.integers(min_value=0, max_value=max_transactions))
    transactions = []
    for _ in range(num_transactions):
        size = draw(st.integers(min_value=1, max_value=num_items))
        chosen = draw(
            st.lists(
                st.sampled_from(items), min_size=size, max_size=size, unique=True
            )
        )
        transactions.append(canonical(chosen))
    return transactions


@st.composite
def uncertain_databases(
    draw,
    min_transactions: int = 1,
    max_transactions: int = 8,
    max_items: int = 5,
    allow_certain: bool = True,
):
    """A small tuple-uncertain database suitable for possible-world oracles."""
    num_items = draw(st.integers(min_value=1, max_value=max_items))
    items = ITEM_POOL[:num_items]
    num_transactions = draw(
        st.integers(min_value=min_transactions, max_value=max_transactions)
    )
    rows = []
    upper = 1.0 if allow_certain else 0.95
    for index in range(num_transactions):
        size = draw(st.integers(min_value=1, max_value=num_items))
        chosen = draw(
            st.lists(
                st.sampled_from(items), min_size=size, max_size=size, unique=True
            )
        )
        probability = draw(
            st.floats(min_value=0.05, max_value=upper, allow_nan=False)
        )
        rows.append((f"T{index}", canonical(chosen), round(probability, 3)))
    return UncertainDatabase.from_rows(rows)


@st.composite
def item_uncertain_databases(
    draw,
    min_transactions: int = 1,
    max_transactions: int = 4,
    max_items: int = 3,
    max_uncertain_occurrences: int = 10,
):
    """A tiny attribute-uncertain database within world-enumeration reach.

    The total number of *uncertain* item occurrences (probability < 1) is
    capped so :meth:`ItemUncertainDatabase.enumerate_worlds` — exponential
    in that count — stays a usable oracle.
    """
    num_items = draw(st.integers(min_value=1, max_value=max_items))
    items = ITEM_POOL[:num_items]
    num_transactions = draw(
        st.integers(min_value=min_transactions, max_value=max_transactions)
    )
    uncertain_budget = max_uncertain_occurrences
    rows = []
    for index in range(num_transactions):
        size = draw(st.integers(min_value=1, max_value=num_items))
        chosen = draw(
            st.lists(
                st.sampled_from(items), min_size=size, max_size=size, unique=True
            )
        )
        contents = {}
        for item in canonical(chosen):
            if uncertain_budget > 0 and draw(st.booleans()):
                probability = draw(
                    st.floats(min_value=0.1, max_value=0.95, allow_nan=False)
                )
                contents[item] = round(probability, 2)
                uncertain_budget -= 1
            else:
                contents[item] = 1.0
        rows.append((f"T{index}", contents))
    return ItemUncertainDatabase.from_rows(rows)


@st.composite
def probability_lists(draw, max_size: int = 10):
    """A list of probabilities in [0, 1] (Poisson-binomial success vector)."""
    return draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=0,
            max_size=max_size,
        )
    )


# The conformance suite's preferred name; same strategy.
probability_vectors = probability_lists


def databases_for_model(model_name: str):
    """The database strategy matching a registered uncertainty-model name.

    Lets parametrized conformance tests draw well-shaped inputs for *any*
    registered model: built-ins dispatch here; third-party models can layer
    their own dispatch on top.
    """
    if model_name in ("tuple", "tuple-level"):
        return uncertain_databases(min_transactions=1, max_transactions=6)
    if model_name in ("attribute", "attribute-level", "item"):
        return item_uncertain_databases()
    raise ValueError(f"no database strategy for uncertainty model {model_name!r}")


def random_uncertain_database(
    rng: random.Random, rows: int, items: str = "abcdefg"
) -> UncertainDatabase:
    """Deterministic tuple-uncertain database (non-hypothesis loop tests)."""
    data = []
    for index in range(rows):
        size = rng.randint(1, len(items))
        data.append(
            (
                f"T{index}",
                "".join(rng.sample(items, size)),
                round(rng.uniform(0.05, 1.0), 3),
            )
        )
    return UncertainDatabase.from_rows(data)
