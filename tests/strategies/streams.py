"""Stream-shaped strategies: transactions, streams, windowed replays."""

from __future__ import annotations

import random
from typing import Iterable, List, Tuple

from hypothesis import strategies as st

from repro.core.database import UncertainTransaction

from tests.strategies.databases import ITEM_POOL


def make_transaction(tid, items: Iterable, probability: float) -> UncertainTransaction:
    """One uncertain transaction from loose parts (test shorthand)."""
    return UncertainTransaction(str(tid), tuple(items), probability)


@st.composite
def uncertain_transactions(draw, max_items: int = 5, tid_prefix: str = "T"):
    """One uncertain transaction over the shared item pool."""
    num_items = draw(st.integers(min_value=1, max_value=max_items))
    items = ITEM_POOL[:max_items]
    chosen = draw(
        st.lists(
            st.sampled_from(items),
            min_size=num_items,
            max_size=num_items,
            unique=True,
        )
    )
    probability = draw(st.floats(min_value=0.05, max_value=1.0, allow_nan=False))
    tid = draw(st.integers(min_value=0, max_value=10**6))
    return make_transaction(
        f"{tid_prefix}{tid}", sorted(chosen), round(probability, 3)
    )


@st.composite
def transaction_streams(
    draw, min_length: int = 0, max_length: int = 40, max_items: int = 5
):
    """A finite stream of uncertain transactions with unique tids."""
    length = draw(st.integers(min_value=min_length, max_value=max_length))
    stream: List[UncertainTransaction] = []
    for index in range(length):
        transaction = draw(uncertain_transactions(max_items=max_items))
        stream.append(
            make_transaction(f"T{index}", transaction.items, transaction.probability)
        )
    return stream


@st.composite
def windowed_streams(
    draw,
    min_length: int = 1,
    max_length: int = 40,
    min_capacity: int = 1,
    max_capacity: int = 12,
    max_items: int = 5,
):
    """``(transactions, capacity)`` for sliding-window replay properties."""
    stream = draw(
        transaction_streams(
            min_length=min_length, max_length=max_length, max_items=max_items
        )
    )
    capacity = draw(st.integers(min_value=min_capacity, max_value=max_capacity))
    return stream, capacity


def random_uncertain_transactions(
    rng: random.Random,
    count: int,
    items: str = "abcde",
    max_size: int = 4,
    low: float = 0.1,
    high: float = 1.0,
) -> List[UncertainTransaction]:
    """Deterministic transaction stream (non-hypothesis replay tests)."""
    size_cap = min(max_size, len(items))
    return [
        make_transaction(
            f"T{index}",
            sorted(rng.sample(items, rng.randint(1, size_cap))),
            round(rng.uniform(low, high), 3),
        )
        for index in range(count)
    ]
