"""Hypothesis settings profiles: ``dev`` (default), ``ci``, ``nightly``.

The profiles trade example volume for wall-clock:

* ``dev`` — fast local feedback (the default when no profile is selected);
* ``ci`` — the pull-request gate: more examples than ``dev``, still bounded
  enough for the ``conformance-smoke`` job;
* ``nightly`` — deep sweep for scheduled / ``workflow_dispatch`` runs.

Select with the ``REPRO_HYPOTHESIS_PROFILE`` environment variable;
``tests/conftest.py`` calls :func:`load_profile_from_env` at collection
time, so ``REPRO_HYPOTHESIS_PROFILE=ci pytest tests/conformance`` is the
whole interface.  Per-test ``@settings(max_examples=...)`` decorations
override the profile, as hypothesis specifies.
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, settings

ENV_VAR = "REPRO_HYPOTHESIS_PROFILE"

# Mining a database per example is slow by hypothesis standards; every
# profile disables deadlines and the too_slow health check for that reason.
_COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

HYPOTHESIS_PROFILES = {
    "dev": dict(max_examples=25, **_COMMON),
    "ci": dict(max_examples=75, **_COMMON),
    "nightly": dict(max_examples=400, print_blob=True, **_COMMON),
}

_registered = False


def register_profiles() -> None:
    """Register every profile with hypothesis (idempotent)."""
    global _registered
    if _registered:
        return
    for name, kwargs in HYPOTHESIS_PROFILES.items():
        settings.register_profile(name, **kwargs)
    _registered = True


def load_profile_from_env(default: str = "dev") -> str:
    """Load the profile named by ``REPRO_HYPOTHESIS_PROFILE`` (or ``default``).

    Returns the loaded profile name; unknown names fail loudly rather than
    silently testing less than CI thinks it is.
    """
    register_profiles()
    name = os.environ.get(ENV_VAR, default)
    if name not in HYPOTHESIS_PROFILES:
        raise ValueError(
            f"unknown hypothesis profile {name!r} from ${ENV_VAR} "
            f"(known: {', '.join(sorted(HYPOTHESIS_PROFILES))})"
        )
    settings.load_profile(name)
    return name
