"""Error paths and contracts of the component registries.

Covers the generic :class:`repro.registry.Registry` primitive (duplicate
names, unknown-name did-you-mean, deprecated aliases, validation,
unregister) and the wired seams: the built-in component tables and
:class:`MinerConfig` rejecting unregistered names per field.
"""

from __future__ import annotations

import pytest

from repro.core.config import MinerConfig
from repro.registry import (
    DEGRADATION_POLICIES,
    TIDSET_BACKENDS,
    UNCERTAINTY_MODELS,
    UNION_LOWER_BOUNDS,
    UNION_UPPER_BOUNDS,
    DuplicateComponentError,
    Registry,
    RegistryError,
    UnknownComponentError,
)


# ----------------------------------------------------------------------
# the generic primitive
# ----------------------------------------------------------------------
class TestRegistration:
    def test_register_and_get(self):
        registry = Registry("widget")
        widget = object()
        assert registry.register("plain", widget) is widget
        assert registry.get("plain") is widget
        assert registry.names() == ["plain"]
        assert "plain" in registry and len(registry) == 1

    def test_decorator_form(self):
        registry = Registry("widget")

        @registry.register("decorated")
        def build():
            return 42

        assert registry.get("decorated") is build

    def test_duplicate_name_rejected(self):
        registry = Registry("widget")
        registry.register("taken", object())
        with pytest.raises(DuplicateComponentError, match="duplicate widget name 'taken'"):
            registry.register("taken", object())

    def test_duplicate_via_alias_rejected_in_both_directions(self):
        registry = Registry("widget")
        registry.register("first", object(), aliases=("nick",))
        with pytest.raises(DuplicateComponentError, match="'nick'"):
            registry.register("nick", object())
        with pytest.raises(DuplicateComponentError, match="'first'"):
            registry.register("second", object(), aliases=("first",))

    def test_empty_name_rejected(self):
        registry = Registry("widget")
        with pytest.raises(RegistryError, match="non-empty"):
            registry.register("", object())
        with pytest.raises(RegistryError, match="non-empty"):
            registry.register("   ", object())

    def test_validator_rejects_at_registration_time(self):
        def only_callables(name, component):
            if not callable(component):
                raise RegistryError(f"widget {name!r} must be callable")

        registry = Registry("widget", validator=only_callables)
        with pytest.raises(RegistryError, match="must be callable"):
            registry.register("data", 123)
        assert "data" not in registry

    def test_unregister_removes_component_and_aliases(self):
        registry = Registry("widget")
        registry.register("gone", object(), aliases=("bye",))
        registry.unregister("gone")
        assert "gone" not in registry and "bye" not in registry
        with pytest.raises(UnknownComponentError):
            registry.unregister("gone")


class TestResolution:
    def test_unknown_name_lists_registered(self):
        registry = Registry("widget")
        registry.register("alpha", object())
        registry.register("beta", object())
        with pytest.raises(
            UnknownComponentError, match=r"unknown widget 'gamma' \(registered: alpha, beta\)"
        ):
            registry.get("gamma")

    def test_unknown_name_did_you_mean(self):
        registry = Registry("widget")
        registry.register("bitmap", object())
        with pytest.raises(UnknownComponentError, match="did you mean 'bitmap'"):
            registry.get("bitmp")

    def test_unknown_name_on_empty_registry(self):
        registry = Registry("widget")
        with pytest.raises(UnknownComponentError, match=r"\(registered: none\)"):
            registry.get("anything")

    def test_alias_resolves_silently(self):
        registry = Registry("widget")
        widget = object()
        registry.register("canonical", widget, aliases=("nick",))
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert registry.get("nick") is widget
            assert registry.canonicalize("nick") == "canonical"

    def test_deprecated_alias_warns_with_canonical_spelling(self):
        registry = Registry("widget")
        widget = object()
        registry.register("modern", widget, deprecated_aliases=("legacy",))
        with pytest.warns(DeprecationWarning, match="'legacy' is deprecated; use 'modern'"):
            assert registry.get("legacy") is widget

    def test_names_excludes_aliases_and_is_sorted(self):
        registry = Registry("widget")
        registry.register("zeta", object(), aliases=("z",))
        registry.register("alpha", object())
        assert registry.names() == ["alpha", "zeta"]
        assert registry.aliases() == {"z": "zeta"}
        assert list(registry) == ["alpha", "zeta"]


# ----------------------------------------------------------------------
# the wired seams
# ----------------------------------------------------------------------
class TestBuiltinTables:
    def test_expected_builtins_are_registered(self):
        assert TIDSET_BACKENDS.names() == ["bitmap", "bitmap-noprefix", "tuple"]
        assert UNCERTAINTY_MODELS.names() == ["attribute", "tuple"]
        assert UNION_LOWER_BOUNDS.names() == ["dawson_sankoff", "de_caen"]
        assert UNION_UPPER_BOUNDS.names() == ["boole", "kwerel"]
        assert DEGRADATION_POLICIES.names() == ["always-approx", "budget-deadline", "never"]

    def test_model_aliases(self):
        assert UNCERTAINTY_MODELS.canonicalize("tuple-level") == "tuple"
        assert UNCERTAINTY_MODELS.canonicalize("attribute-level") == "attribute"
        with pytest.warns(DeprecationWarning, match="use 'attribute'"):
            assert UNCERTAINTY_MODELS.canonicalize("item") == "attribute"

    def test_deprecated_default_policy_alias(self):
        with pytest.warns(DeprecationWarning, match="use 'budget-deadline'"):
            assert DEGRADATION_POLICIES.canonicalize("default") == "budget-deadline"

    def test_model_surface_validator_rejects_incomplete_models(self):
        with pytest.raises(RegistryError, match="lacks callable attribute"):
            UNCERTAINTY_MODELS.register("hollow", object())
        assert "hollow" not in UNCERTAINTY_MODELS


class TestMinerConfigIntegration:
    def test_unregistered_backend_rejected(self):
        with pytest.raises(UnknownComponentError, match="unknown tidset backend 'roaring'"):
            MinerConfig(min_sup=2, tidset_backend="roaring")

    def test_unregistered_bounds_rejected_with_suggestions(self):
        with pytest.raises(UnknownComponentError, match="did you mean 'de_caen'"):
            MinerConfig(min_sup=2, lower_bound="de_cean")
        with pytest.raises(UnknownComponentError, match="unknown union upper bound"):
            MinerConfig(min_sup=2, upper_bound="hunter")

    def test_unregistered_policy_rejected(self):
        with pytest.raises(UnknownComponentError, match="unknown degradation policy"):
            MinerConfig(min_sup=2, degradation_policy="sometimes")

    def test_config_canonicalizes_deprecated_policy_alias(self):
        with pytest.warns(DeprecationWarning):
            config = MinerConfig(min_sup=2, degradation_policy="default")
        assert config.degradation_policy == "budget-deadline"

    def test_registered_demo_policy_is_usable_by_name(self):
        DEGRADATION_POLICIES.register("demo-noop", lambda config, stats, n: None)
        try:
            config = MinerConfig(min_sup=2, degradation_policy="demo-noop")
            assert config.degradation_policy == "demo-noop"
        finally:
            DEGRADATION_POLICIES.unregister("demo-noop")
        with pytest.raises(UnknownComponentError):
            MinerConfig(min_sup=2, degradation_policy="demo-noop")
