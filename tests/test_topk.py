"""Tests for the top-k PFCI extension."""

import pytest

from repro.core.config import MinerConfig
from repro.core.database import UncertainDatabase
from repro.core.possible_worlds import exact_frequent_closed_itemsets
from repro.core.topk import mine_top_k_pfci


class TestTopK:
    def test_top_one_on_paper_example(self, paper_db):
        outcome = mine_top_k_pfci(paper_db, min_sup=2, k=1)
        assert len(outcome.results) == 1
        assert outcome.results[0].itemset == ("a", "b", "c")
        assert outcome.results[0].probability == pytest.approx(0.8754)

    def test_top_two_ordering(self, paper_db):
        outcome = mine_top_k_pfci(paper_db, min_sup=2, k=2)
        itemsets = [result.itemset for result in outcome.results]
        assert itemsets == [("a", "b", "c"), ("a", "b", "c", "d")]
        probabilities = [result.probability for result in outcome.results]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_relaxation_happens_when_start_too_high(self, paper_db):
        outcome = mine_top_k_pfci(
            paper_db, min_sup=2, k=2, start_pfct=0.9, relaxation=0.9
        )
        # Pr_FC({abcd}) = 0.81 < 0.9: at least one relaxation round needed.
        assert outcome.rounds > 1
        assert len(outcome.results) == 2

    def test_exhaustion(self, paper_db):
        # Only 2 itemsets ever have positive Pr_FC at min_sup=2.
        outcome = mine_top_k_pfci(paper_db, min_sup=2, k=10, floor_pfct=0.0)
        assert outcome.exhausted
        assert len(outcome.results) == 2
        assert outcome.threshold == 0.0

    def test_matches_oracle_top_k(self):
        db = UncertainDatabase.from_rows(
            [
                ("T1", "ab", 0.9),
                ("T2", "ab", 0.8),
                ("T3", "cd", 0.9),
                ("T4", "cd", 0.7),
                ("T5", "ac", 0.6),
            ]
        )
        truth = exact_frequent_closed_itemsets(db, 2, 0.0)
        expected_order = sorted(truth.items(), key=lambda kv: -kv[1])
        outcome = mine_top_k_pfci(db, min_sup=2, k=3)
        got = [(r.itemset, r.probability) for r in outcome.results]
        assert [itemset for itemset, _p in got] == [
            itemset for itemset, _p in expected_order[:3]
        ]
        for (_, got_probability), (_, true_probability) in zip(
            got, expected_order
        ):
            assert got_probability == pytest.approx(true_probability, abs=1e-6)

    def test_custom_config_is_respected(self, paper_db):
        config = MinerConfig(min_sup=2, use_probability_bounds=False,
                             exact_event_limit=32)
        outcome = mine_top_k_pfci(paper_db, min_sup=2, k=2, config=config)
        assert len(outcome.results) == 2
        assert outcome.stats.bound_evaluations == 0

    def test_stats_accumulate_over_rounds(self, paper_db):
        outcome = mine_top_k_pfci(
            paper_db, min_sup=2, k=2, start_pfct=0.9, relaxation=0.9
        )
        assert outcome.stats.nodes_visited > outcome.rounds  # several per round

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"k": 0},
            {"k": 1, "floor_pfct": 1.0},
            {"k": 1, "floor_pfct": 0.5, "start_pfct": 0.4},
            {"k": 1, "relaxation": 0.0},
            {"k": 1, "relaxation": 1.0},
        ],
    )
    def test_validation(self, paper_db, kwargs):
        with pytest.raises(ValueError):
            mine_top_k_pfci(paper_db, min_sup=2, **kwargs)
