"""Unit tests for the service's job model, cache, schemas, and cancellation.

The cancellation tests pin the satellite-3 contract: cancelling a run
leaves a checkpoint durably *marked cancelled* (never a
resumable-but-abandoned file), resuming such a checkpoint refuses with
:class:`CheckpointCancelledError`, and a cancelled run never reaches the
fingerprint cache — so resubmitting the same work mines fresh.
"""

import json
import threading

import pytest

from repro.core.config import MinerConfig
from repro.core.database import paper_table2_database
from repro.core.miner import MPFCIMiner
from repro.runtime import (
    CheckpointCancelledError,
    SupervisorConfig,
    fingerprint,
    load_checkpoint,
    run_supervised,
)
from repro.service import (
    ApiError,
    JobStore,
    ResultCache,
    parse_job_request,
)


@pytest.fixture(scope="module")
def database():
    return paper_table2_database()


@pytest.fixture(scope="module")
def config():
    return MinerConfig(min_sup=2, pfct=0.5, exact_event_limit=12, seed=7)


DIGEST = "0" * 64


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(DIGEST) is None
        cache.put(DIGEST, {"results": [1, 2]})
        assert cache.get(DIGEST) == {"results": [1, 2]}
        assert cache.stats() == {
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "entries": 1,
            "max_entries": cache.max_entries,
        }

    def test_contains_and_len(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert DIGEST not in cache
        cache.put(DIGEST, {})
        assert DIGEST in cache
        assert len(cache) == 1

    def test_damaged_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(DIGEST, {"ok": True})
        (tmp_path / f"{DIGEST}.json").write_text("{torn", encoding="utf-8")
        assert cache.get(DIGEST) is None
        assert cache.misses == 1

    def test_rejects_non_digest_keys(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(ValueError):
            cache.get("../../etc/passwd")
        with pytest.raises(ValueError):
            cache.put("short", {})


class GoodBody:
    """A fresh, valid submission body per call (tests mutate it)."""

    @staticmethod
    def make():
        return {
            "database": {
                "transactions": [
                    {"tid": "T1", "probability": 0.9, "items": ["a", "b"]},
                    {"tid": "T2", "probability": 0.5, "items": ["a"]},
                ]
            },
            "config": {"min_sup": 1, "pfct": 0.5},
        }


class TestParseJobRequest:
    def test_valid_inline(self):
        request = parse_job_request(GoodBody.make())
        assert request.database is not None
        assert request.database_path is None
        assert request.config.min_sup == 1
        assert request.processes is None and request.supervisor is None

    def test_valid_path_and_options(self):
        body = GoodBody.make()
        body["database"] = {"path": "data/mushroom.utd"}
        body["processes"] = 3
        body["supervisor"] = {"max_retries": 1}
        request = parse_job_request(body)
        assert request.database is None
        assert request.database_path == "data/mushroom.utd"
        assert request.processes == 3
        assert isinstance(request.supervisor, SupervisorConfig)

    def assert_error(self, body, code, fragment=""):
        with pytest.raises(ApiError) as excinfo:
            parse_job_request(body)
        assert excinfo.value.status == 400
        assert excinfo.value.code == code
        assert fragment in excinfo.value.message

    def test_non_object_body(self):
        self.assert_error([1, 2], "invalid-request")

    def test_unknown_top_level_field(self):
        body = GoodBody.make()
        body["databse"] = body.pop("database")
        self.assert_error(body, "unknown-field", "databse")

    def test_unknown_config_field(self):
        body = GoodBody.make()
        body["config"]["min_supp"] = 2
        self.assert_error(body, "unknown-field", "min_supp")

    def test_missing_min_sup(self):
        body = GoodBody.make()
        del body["config"]["min_sup"]
        self.assert_error(body, "invalid-config", "min_sup")

    def test_registry_did_you_mean_surfaces(self):
        body = GoodBody.make()
        body["config"]["tidset_backend"] = "bitmpa"
        with pytest.raises(ApiError) as excinfo:
            parse_job_request(body)
        assert excinfo.value.code == "invalid-config"
        assert "bitmap" in excinfo.value.message  # the suggestion

    def test_database_needs_exactly_one_form(self):
        body = GoodBody.make()
        body["database"]["path"] = "x.utd"  # both forms
        self.assert_error(body, "invalid-database", "exactly one")
        body = GoodBody.make()
        body["database"] = {}
        self.assert_error(body, "invalid-database", "exactly one")

    def test_probability_out_of_range(self):
        body = GoodBody.make()
        body["database"]["transactions"][0]["probability"] = 0.0
        self.assert_error(body, "invalid-database", "probability")
        body = GoodBody.make()
        body["database"]["transactions"][0]["probability"] = 1.5
        self.assert_error(body, "invalid-database", "probability")

    def test_empty_items(self):
        body = GoodBody.make()
        body["database"]["transactions"][0]["items"] = []
        self.assert_error(body, "invalid-database", "items")

    def test_default_tids_assigned(self):
        body = GoodBody.make()
        for transaction in body["database"]["transactions"]:
            del transaction["tid"]
        request = parse_job_request(body)
        assert [t.tid for t in request.database] == ["T1", "T2"]

    def test_bad_processes(self):
        for bad in (0, -1, "2", True):
            body = GoodBody.make()
            body["processes"] = bad
            self.assert_error(body, "invalid-request", "processes")

    def test_unknown_supervisor_field(self):
        body = GoodBody.make()
        body["supervisor"] = {"max_retrys": 2}
        self.assert_error(body, "unknown-field", "max_retrys")


class TestJobStore:
    def test_create_materializes_and_fingerprints(self, tmp_path, database, config):
        store = JobStore(tmp_path)
        job = store.create(database, config, None, None, submitted_at=1.0)
        assert job.id == "j000001"
        assert job.state == "queued"
        assert job.database_path.exists()
        # Fingerprint is computed over the *materialized* database: loading
        # it back and fingerprinting again must agree (this is what makes
        # the submit digest, checkpoint header, and cache key one value).
        from repro.data.io import load_uncertain_database

        reloaded = load_uncertain_database(job.database_path)
        assert fingerprint(reloaded, config) == job.fingerprint

    def test_manifest_round_trip_across_store_restart(
        self, tmp_path, database, config
    ):
        store = JobStore(tmp_path)
        job = store.create(database, config, 2, SupervisorConfig(), submitted_at=5.0)
        job.state = "running"
        job.started_at = 6.0
        job.stats = {"checks_performed": 4}
        store.save(job)

        reopened = JobStore(tmp_path)
        restored = reopened.get(job.id)
        assert restored is not None
        assert restored.state == "running"
        assert restored.fingerprint == job.fingerprint
        assert restored.config == job.config
        assert restored.supervisor == job.supervisor
        assert restored.stats == {"checks_performed": 4}
        assert restored.miner_config() == config

    def test_sequence_continues_after_restart(self, tmp_path, database, config):
        store = JobStore(tmp_path)
        store.create(database, config, None, None, submitted_at=1.0)
        reopened = JobStore(tmp_path)
        second = reopened.create(database, config, None, None, submitted_at=2.0)
        assert second.id == "j000002"

    def test_discard_removes_directory(self, tmp_path, database, config):
        store = JobStore(tmp_path)
        job = store.create(database, config, None, None, submitted_at=1.0)
        store.discard(job)
        assert store.get(job.id) is None
        assert not job.directory.exists()

    def test_counts(self, tmp_path, database, config):
        store = JobStore(tmp_path)
        job = store.create(database, config, None, None, submitted_at=1.0)
        job.state = "completed"
        store.save(job)
        counts = store.counts()
        assert counts["completed"] == 1
        assert counts["queued"] == 0


class _FireAfter:
    """A deterministic cancel signal: reads as set from the N-th check on.

    Replaces wall-clock racing in mid-run cancellation tests — the
    supervisor polls the event at well-defined points, so "cancel after k
    polls" lands at a reproducible place in the run.
    """

    def __init__(self, checks: int) -> None:
        self._remaining = checks
        self._lock = threading.Lock()

    def is_set(self) -> bool:
        with self._lock:
            if self._remaining > 0:
                self._remaining -= 1
                return False
            return True


class TestCancellationDurability:
    def test_precancelled_run_marks_checkpoint(self, tmp_path, database, config):
        checkpoint_path = tmp_path / "checkpoint.jsonl"
        event = threading.Event()
        event.set()
        report = run_supervised(
            database, config, processes=2,
            checkpoint_path=checkpoint_path, cancel_event=event,
        )
        assert report.cancelled
        assert not report.complete
        assert not report.results
        checkpoint = load_checkpoint(checkpoint_path)
        assert checkpoint.cancelled
        assert checkpoint.cancelled_ranks  # every branch durably cancelled

    def test_midrun_cancel_keeps_finished_branches(self, tmp_path, database, config):
        checkpoint_path = tmp_path / "checkpoint.jsonl"
        report = run_supervised(
            database, config, processes=1,
            checkpoint_path=checkpoint_path,
            cancel_event=_FireAfter(3),
        )
        assert report.cancelled
        checkpoint = load_checkpoint(checkpoint_path)
        assert checkpoint.cancelled
        # Completed and cancelled ranks partition the branch plan: nothing
        # is silently dropped, and whatever finished before the signal
        # matches the serial miner on those branches.
        done = {outcome.rank for outcome in report.outcomes
                if outcome.status in ("completed", "checkpointed")}
        assert done.isdisjoint(set(checkpoint.cancelled_ranks))
        assert report.stats.branches_cancelled == len(checkpoint.cancelled_ranks)

    def test_resume_of_cancelled_checkpoint_refuses(self, tmp_path, database, config):
        checkpoint_path = tmp_path / "checkpoint.jsonl"
        event = threading.Event()
        event.set()
        run_supervised(
            database, config, processes=2,
            checkpoint_path=checkpoint_path, cancel_event=event,
        )
        with pytest.raises(CheckpointCancelledError):
            run_supervised(
                database, config, processes=2,
                checkpoint_path=checkpoint_path, resume_from_checkpoint=True,
            )

    def test_cancelled_record_is_durable_json(self, tmp_path, database, config):
        checkpoint_path = tmp_path / "checkpoint.jsonl"
        event = threading.Event()
        event.set()
        run_supervised(
            database, config, processes=2,
            checkpoint_path=checkpoint_path, cancel_event=event,
        )
        kinds = [
            json.loads(line).get("kind", "branch")
            for line in checkpoint_path.read_text().splitlines()[1:]
            if line.strip()
        ]
        assert "cancelled" in kinds

    def test_cancelled_run_never_matches_full_results(self, database, config):
        # A cancelled report must be visibly incomplete so callers (the
        # service runner) know not to cache it.
        event = threading.Event()
        event.set()
        report = run_supervised(database, config, cancel_event=event)
        full = MPFCIMiner(database, config).mine()
        assert report.cancelled
        assert len(report.results) < len(full)
