"""Backend parity and packed-word edge cases for the tidset engines.

The bitmap engine's contract is *bit-for-bit* parity with the tuple oracle:
every numeric quantity (absent factors, ``Pr_F`` DPs, sampled estimates) is
evaluated through the same IEEE-754 operation sequence in both backends, so
mining results must be identical field for field — not merely close.  These
tests assert exactly that, on random databases, through 60+ streaming
slides, and at every packed-word boundary (0, 1, 63, 64, 65 rows).
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.bfs import MPFCIBreadthFirstMiner
from repro.core.config import MinerConfig
from repro.core.database import (
    UncertainDatabase,
    UncertainTransaction,
    intersect_tidsets,
    paper_table2_database,
)
from repro.core.miner import MPFCIMiner
from repro.core.support import (
    frequent_probability,
    frequent_probability_masked_batch,
    sample_conditional_presence,
    sample_conditional_presence_batch,
    tail_probability_table,
)
from repro.core.tidsets import (
    TIDSET_BACKENDS,
    BitmapTidset,
    BitmapTidsetEngine,
    TupleTidsetEngine,
    pack_positions,
)
from repro.streaming.window import WindowedUncertainDatabase
from tests.strategies import random_uncertain_database, uncertain_databases

RESULT_FIELDS = (
    "itemset",
    "probability",
    "lower",
    "upper",
    "method",
    "frequent_probability",
)


def assert_identical_results(first, second) -> None:
    """Field-for-field equality of two result lists (exact floats)."""
    assert len(first) == len(second)
    for left, right in zip(first, second):
        for name in RESULT_FIELDS:
            assert getattr(left, name) == getattr(right, name), name


def mine_both(database: UncertainDatabase, **config_kwargs):
    results = {}
    for backend in TIDSET_BACKENDS:
        config = MinerConfig(tidset_backend=backend, **config_kwargs)
        results[backend] = MPFCIMiner(database, config).mine()
    return results["tuple"], results["bitmap"]


# ----------------------------------------------------------------------
# configuration plumbing
# ----------------------------------------------------------------------
class TestConfig:
    def test_default_backend_is_bitmap(self):
        assert MinerConfig(min_sup=2).tidset_backend == "bitmap"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="tidset backend"):
            MinerConfig(min_sup=2, tidset_backend="roaring")

    def test_describe_mentions_non_default_backend_only(self):
        assert "engine" not in MinerConfig(min_sup=2).describe()
        assert "engine=tuple" in MinerConfig(
            min_sup=2, tidset_backend="tuple"
        ).describe()


# ----------------------------------------------------------------------
# tuple-backend intersection (the oracle path satellite fix)
# ----------------------------------------------------------------------
class TestIntersectTidsets:
    def test_preserves_sorted_order_without_resort(self):
        assert intersect_tidsets((0, 2, 5, 9), (2, 3, 5, 6, 9)) == (2, 5, 9)

    def test_walks_the_shorter_side(self):
        assert intersect_tidsets(tuple(range(100)), (3, 97)) == (3, 97)
        assert intersect_tidsets((3, 97), tuple(range(100))) == (3, 97)

    def test_empty_cases(self):
        assert intersect_tidsets((), (1, 2)) == ()
        assert intersect_tidsets((1, 2), ()) == ()
        assert intersect_tidsets((1,), (2,)) == ()


# ----------------------------------------------------------------------
# packed-word edge cases
# ----------------------------------------------------------------------
class TestPackedWords:
    @pytest.mark.parametrize("rows", [0, 1, 63, 64, 65])
    def test_word_boundaries(self, rows):
        rng = random.Random(rows)
        data = [
            (f"T{index}", "ab" if index % 2 else "a", round(rng.uniform(0.1, 1.0), 3))
            for index in range(rows)
        ]
        database = (
            UncertainDatabase.from_rows(data)
            if rows
            else UncertainDatabase([])
        )
        engine = database.tidset_engine("bitmap")
        oracle = database.tidset_engine("tuple")
        assert engine.word_count == max((rows + 63) // 64, 0)
        for item in database.items:
            bitmap = engine.item_tidset(item)
            assert bitmap.positions() == oracle.item_tidset(item)
            assert engine.probabilities(bitmap) == oracle.probabilities(
                oracle.item_tidset(item)
            )
        universe = engine.universe()
        assert len(universe) == rows
        assert universe.positions() == tuple(range(rows))

    def test_pack_positions_padding_bits_are_zero(self):
        words = pack_positions([0, 63, 64], 65)
        assert len(words) == 2
        bitmap = BitmapTidset(words)
        assert bitmap.positions() == (0, 63, 64)
        # No stray bits beyond n_bits.
        assert int(words[1]) == 1

    def test_bitmap_tidset_is_a_cache_key(self):
        first = BitmapTidset(pack_positions([1, 2], 64))
        second = BitmapTidset(pack_positions([1, 2], 64))
        third = BitmapTidset(pack_positions([1, 3], 64))
        assert first == second and hash(first) == hash(second)
        assert first != third
        assert len({first, second, third}) == 2

    def test_bitmap_tidset_pickles(self):
        import pickle

        bitmap = BitmapTidset(pack_positions([0, 70], 128), offset=0)
        clone = pickle.loads(pickle.dumps(bitmap))
        assert clone == bitmap and clone.positions() == (0, 70)

    def test_empty_itemset_tidset_is_universe(self):
        database = paper_table2_database()
        engine = database.tidset_engine("bitmap")
        assert engine.tidset_of(()).positions() == (0, 1, 2, 3)

    def test_unknown_item_tidset_is_empty(self):
        database = paper_table2_database()
        engine = database.tidset_engine("bitmap")
        assert engine.tidset_of(("z",)).positions() == ()
        assert engine.item_tidset("z").positions() == ()


# ----------------------------------------------------------------------
# batched kernels are bit-exact against their serial references
# ----------------------------------------------------------------------
class TestBatchedKernels:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_masked_batch_dp_matches_serial(self, seed):
        rng = random.Random(seed)
        width = rng.randint(1, 24)
        base = [round(rng.uniform(0.01, 1.0), 4) for _ in range(width)]
        min_sup = rng.randint(0, width)
        membership = np.array(
            [
                [rng.random() < 0.6 for _ in range(width)]
                for _ in range(rng.randint(1, 6))
            ],
            dtype=bool,
        )
        batch = frequent_probability_masked_batch(
            np.asarray(base), membership, min_sup
        )
        for row in range(membership.shape[0]):
            subset = [p for p, member in zip(base, membership[row]) if member]
            assert batch[row] == frequent_probability(subset, min_sup)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_batch_sampler_replays_serial_uniform_stream(self, seed):
        rng = random.Random(seed)
        width = rng.randint(1, 12)
        probabilities = [round(rng.uniform(0.05, 1.0), 4) for _ in range(width)]
        min_sup = rng.randint(1, width)
        tail = tail_probability_table(probabilities, min_sup)
        if tail[0][min_sup] <= 0.0:
            return
        uniforms = np.array(
            [[rng.random() for _ in range(width)] for _ in range(8)]
        )
        batch = sample_conditional_presence_batch(
            np.asarray(probabilities), min_sup, uniforms, tail
        )

        class Replay:
            def __init__(self, values):
                self._values = iter(values)

            def random(self):
                return next(self._values)

        for row in range(8):
            serial = sample_conditional_presence(
                probabilities, min_sup, Replay(uniforms[row]), tail_table=tail
            )
            assert list(batch[row]) == [bool(bit) for bit in serial]


# ----------------------------------------------------------------------
# mining parity: batch
# ----------------------------------------------------------------------
class TestMiningParity:
    @given(uncertain_databases(min_transactions=2, max_transactions=8))
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_dfs_parity_on_random_databases(self, database):
        tuple_results, bitmap_results = mine_both(
            database, min_sup=2, pfct=0.3, exact_event_limit=64
        )
        assert_identical_results(tuple_results, bitmap_results)

    @given(uncertain_databases(min_transactions=2, max_transactions=8))
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_dfs_parity_on_sampling_path(self, database):
        # exact_event_limit=0 forces every surviving check through ApproxFCP;
        # the vectorized sampler must replay the serial rng stream exactly.
        tuple_results, bitmap_results = mine_both(
            database, min_sup=1, pfct=0.2, exact_event_limit=0, seed=97
        )
        assert_identical_results(tuple_results, bitmap_results)

    @pytest.mark.parametrize("rows", [17, 65, 90])
    def test_dfs_parity_on_larger_random_databases(self, rows):
        rng = random.Random(rows)
        database = random_uncertain_database(rng, rows)
        tuple_results, bitmap_results = mine_both(
            database, min_sup=max(2, rows // 5), pfct=0.4, exact_event_limit=16
        )
        assert_identical_results(tuple_results, bitmap_results)

    def test_bfs_parity(self):
        rng = random.Random(5)
        database = random_uncertain_database(rng, 40)
        results = {}
        for backend in TIDSET_BACKENDS:
            config = MinerConfig(min_sup=8, pfct=0.4, tidset_backend=backend)
            results[backend] = MPFCIBreadthFirstMiner(database, config).mine()
        assert_identical_results(results["tuple"], results["bitmap"])

    def test_engine_counters_land_in_stats(self):
        database = paper_table2_database()
        miner = MPFCIMiner(database, MinerConfig(min_sup=2))
        miner.mine()
        stats = miner.stats
        assert stats.tidset_intersections > 0
        assert stats.tidset_words_anded > 0
        assert stats.tidset_popcounts > 0
        assert stats.tidset_gathers > 0
        assert stats.dp_batch_invocations > 0
        assert stats.dp_batch_invocations <= stats.dp_invocations
        # Counters are per-run deltas: a second mine() reports the same work.
        first = (stats.tidset_intersections, stats.tidset_gathers)
        miner.mine()
        assert (
            miner.stats.tidset_intersections,
            miner.stats.tidset_gathers,
        ) == first

    def test_tuple_backend_reports_intersections_only(self):
        database = paper_table2_database()
        miner = MPFCIMiner(
            database, MinerConfig(min_sup=2, tidset_backend="tuple")
        )
        miner.mine()
        assert miner.stats.tidset_intersections > 0
        assert miner.stats.tidset_words_anded == 0
        assert miner.stats.dp_batch_invocations == 0


# ----------------------------------------------------------------------
# per-prefix kernels: active-word restriction + gather caching
# ----------------------------------------------------------------------
def clustered_database(rows: int = 192, seed: int = 7) -> UncertainDatabase:
    """A 3-word database whose frequent items live in the first word only.

    Every prefix over ``a``/``b``/``c`` has two all-zero bitmap words, which
    is exactly the shape the active-word restriction exploits: intersections
    under such a prefix need to AND and popcount one word column, not three.
    """
    rng = random.Random(seed)
    transactions = []
    for tid in range(rows):
        items = []
        if tid < 40:
            items.append("a")
        if tid < 30:
            items.append("b")
        if tid < 25:
            items.append("c")
        if rng.random() < 0.3:
            items.append("x")
        if rng.random() < 0.3:
            items.append("y")
        if not items:
            items.append("z")
        transactions.append((f"T{tid}", items, 0.3 + 0.6 * rng.random()))
    return UncertainDatabase.from_rows(transactions)


class TestPrefixKernels:
    """The ``bitmap`` vs ``bitmap-noprefix`` ablation, counter by counter.

    The CI-scale benchmark cannot show the active-word reduction (its bitmap
    is two words wide and frequent prefixes span both), so the strict
    inequality lives here, on a purpose-built clustered database.
    """

    def _mine(self, database, backend):
        config = MinerConfig(min_sup=5, pfct=0.4, tidset_backend=backend)
        miner = MPFCIMiner(database, config)
        results = miner.mine()
        return results, miner.stats

    def test_active_word_restriction_cuts_words_anded(self):
        database = clustered_database()
        cached_results, cached = self._mine(database, "bitmap")
        ablated_results, ablated = self._mine(database, "bitmap-noprefix")
        tuple_results, _ = self._mine(database, "tuple")
        # Bit-for-bit parity first: the kernels must change the work done,
        # never the answer.
        assert_identical_results(cached_results, ablated_results)
        assert_identical_results(cached_results, tuple_results)
        # The clustered prefixes have 2 of 3 words zero, so the cached
        # engine ANDs strictly fewer word columns.
        assert cached.tidset_words_anded < ablated.tidset_words_anded
        # The ablated engine never touches the prefix cache.
        assert cached.tidset_prefix_misses > 0
        assert ablated.tidset_prefix_hits == 0
        assert ablated.tidset_prefix_misses == 0

    def test_prefix_cache_resets_between_runs(self):
        database = clustered_database()
        config = MinerConfig(min_sup=5, pfct=0.4, tidset_backend="bitmap")
        miner = MPFCIMiner(database, config)
        miner.mine()
        first = (
            miner.stats.tidset_prefix_hits,
            miner.stats.tidset_prefix_misses,
            miner.stats.tidset_words_anded,
        )
        # reset_transients() drops the cache at run start, so a re-run does
        # identical work — no carried-over hits.
        miner.mine()
        second = (
            miner.stats.tidset_prefix_hits,
            miner.stats.tidset_prefix_misses,
            miner.stats.tidset_words_anded,
        )
        assert first == second


# ----------------------------------------------------------------------
# mining parity: streaming (incremental bitmaps + generation re-pack)
# ----------------------------------------------------------------------
class TestStreamingParity:
    def _replay(self, backend, transactions, window, min_sup):
        from repro.streaming import PFCIMonitor

        config = MinerConfig(
            min_sup=min_sup,
            pfct=0.4,
            exact_event_limit=64,
            tidset_backend=backend,
        )
        monitor = PFCIMonitor(config, window=window)
        per_slide = []
        for transaction in transactions:
            monitor.slide(transaction)
            per_slide.append(monitor.results())
        return per_slide

    def test_sixty_slides_identical_per_slide(self):
        rng = random.Random(23)
        transactions = [
            UncertainTransaction(
                f"T{index}",
                tuple(rng.sample("abcde", rng.randint(1, 4))),
                round(rng.uniform(0.2, 1.0), 3),
            )
            for index in range(60)
        ]
        tuple_slides = self._replay("tuple", transactions, window=12, min_sup=3)
        bitmap_slides = self._replay("bitmap", transactions, window=12, min_sup=3)
        for left, right in zip(tuple_slides, bitmap_slides):
            assert_identical_results(left, right)

    def test_eviction_wraparound_forces_repacks(self):
        # A tiny window slid far past its capacity must repack repeatedly
        # and still serve exact tidsets.
        window = WindowedUncertainDatabase(capacity=4)
        rng = random.Random(3)
        for index in range(400):
            window.append(
                UncertainTransaction(
                    f"T{index}",
                    tuple(rng.sample("abc", rng.randint(1, 3))),
                    round(rng.uniform(0.1, 1.0), 3),
                )
            )
            snapshot = window.snapshot()
            engine = snapshot.tidset_engine("bitmap")
            for item in snapshot.items:
                assert engine.item_tidset(item).positions() == (
                    snapshot.tidset_of_item(item)
                )
                assert engine.probabilities(engine.item_tidset(item)) == (
                    snapshot.tidset_probabilities(snapshot.tidset_of_item(item))
                )
        assert window.bitmap_repacks > 0

    @pytest.mark.parametrize("capacity", [1, 63, 64, 65])
    def test_window_bitmap_boundaries(self, capacity):
        window = WindowedUncertainDatabase(capacity=capacity)
        rng = random.Random(capacity)
        for index in range(capacity + 70):
            window.append(
                UncertainTransaction(
                    f"T{index}", ("a",), round(rng.uniform(0.1, 1.0), 3)
                )
            )
        snapshot = window.snapshot()
        engine = snapshot.tidset_engine("bitmap")
        assert engine.item_tidset("a").positions() == tuple(range(capacity))
        assert engine.probabilities(engine.item_tidset("a")) == snapshot.probabilities


# ----------------------------------------------------------------------
# engine algebra parity (direct, no miner)
# ----------------------------------------------------------------------
class TestEngineAlgebra:
    def test_absent_factor_and_superset_cover_parity(self):
        rng = random.Random(41)
        for _ in range(25):
            database = random_uncertain_database(rng, rng.randint(2, 50))
            bitmap = database.tidset_engine("bitmap")
            oracle = database.tidset_engine("tuple")
            items = database.items
            for _ in range(10):
                size = rng.randint(1, min(3, len(items)))
                itemset = tuple(sorted(rng.sample(items, size)))
                base_t = oracle.tidset_of(itemset)
                base_b = bitmap.tidset_of(itemset)
                assert base_b.positions() == base_t
                extension = rng.choice(items)
                with_t = oracle.intersect(base_t, oracle.item_tidset(extension))
                with_b = bitmap.intersect(base_b, bitmap.item_tidset(extension))
                assert with_b.positions() == with_t
                assert bitmap.absent_factor(base_b, with_b) == oracle.absent_factor(
                    base_t, with_t
                )
                assert bitmap.superset_covered(itemset, base_b) == (
                    oracle.superset_covered(itemset, base_t)
                )

    def test_member_mask_matches_positions(self):
        database = paper_table2_database()
        engine = database.tidset_engine("bitmap")
        base = engine.universe()
        tidsets = [engine.item_tidset(item) for item in database.items]
        mask = engine.member_mask(base, tidsets)
        for row, item in enumerate(database.items):
            expected = [
                position in set(database.tidset_of_item(item))
                for position in range(len(database))
            ]
            assert list(mask[row]) == expected

    def test_engine_is_cached_per_backend(self):
        database = paper_table2_database()
        assert database.tidset_engine("bitmap") is database.tidset_engine("bitmap")
        assert isinstance(database.tidset_engine("tuple"), TupleTidsetEngine)
        assert isinstance(database.tidset_engine("bitmap"), BitmapTidsetEngine)
        with pytest.raises(ValueError, match="unknown tidset backend"):
            database.tidset_engine("roaring")
