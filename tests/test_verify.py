"""Tests for the post-hoc result verification utility."""

import pytest

from repro.core.config import MinerConfig
from repro.core.database import UncertainDatabase
from repro.core.miner import MPFCIMiner, ProbabilisticFrequentClosedItemset, mine_pfci
from repro.core.verify import verify_results


class TestVerifyResults:
    def test_paper_example_is_sound(self, paper_db):
        results = mine_pfci(paper_db, min_sup=2, pfct=0.8)
        report = verify_results(paper_db, results, min_sup=2, pfct=0.8)
        assert report.all_sound
        assert report.max_point_error < 1e-9
        assert "violations: none" in report.summary()

    def test_sampled_run_is_sound_within_intervals(self, paper_db):
        config = MinerConfig(
            min_sup=2, pfct=0.8, exact_event_limit=0,
            use_probability_bounds=False, epsilon=0.2, delta=0.2,
        )
        results = MPFCIMiner(paper_db, config).mine()
        report = verify_results(paper_db, results, min_sup=2, pfct=0.8)
        assert report.all_sound

    def test_oracle_method_agrees(self, paper_db):
        results = mine_pfci(paper_db, min_sup=2, pfct=0.8)
        exact = verify_results(paper_db, results, 2, 0.8, method="exact")
        oracle = verify_results(paper_db, results, 2, 0.8, method="oracle")
        for left, right in zip(exact.entries, oracle.entries):
            assert left.exact_probability == pytest.approx(
                right.exact_probability, abs=1e-9
            )

    def test_detects_fabricated_result(self, paper_db):
        fake = ProbabilisticFrequentClosedItemset(
            itemset=("a",), probability=0.95, lower=0.9, upper=1.0,
            method="sampled", frequent_probability=0.99,
        )
        report = verify_results(paper_db, [fake], min_sup=2, pfct=0.8)
        assert not report.all_sound
        entry = report.entries[0]
        assert entry.exact_probability == pytest.approx(0.0, abs=1e-12)
        assert not entry.interval_sound
        assert not entry.qualifies
        assert "('a',)" in report.summary()

    def test_detects_threshold_violation_with_sound_interval(self, paper_db):
        # Interval contains the truth (0.81) but the itemset does not clear
        # a higher threshold.
        honest = ProbabilisticFrequentClosedItemset(
            itemset=("a", "b", "c", "d"), probability=0.81, lower=0.7,
            upper=0.9, method="sampled", frequent_probability=0.81,
        )
        report = verify_results(paper_db, [honest], min_sup=2, pfct=0.85)
        assert not report.all_sound
        assert report.entries[0].interval_sound
        assert not report.entries[0].qualifies

    def test_oracle_refuses_large_databases(self):
        db = UncertainDatabase.from_rows(
            [(f"T{i}", "a", 0.5) for i in range(25)]
        )
        with pytest.raises(ValueError, match="possible worlds"):
            verify_results(db, [], min_sup=1, method="oracle")

    def test_unknown_method(self, paper_db):
        with pytest.raises(ValueError, match="method"):
            verify_results(paper_db, [], min_sup=2, method="sampling")

    def test_empty_results(self, paper_db):
        report = verify_results(paper_db, [], min_sup=2)
        assert report.all_sound
        assert report.max_point_error == 0.0
