"""Deterministic chaos matrix over the sharded runtime (CI: chaos-smoke).

Every cell of the matrix is scripted with a :class:`FaultPlan`, so each
run fails identically: fault kinds (crash / hard exit / hang / slow IO)
crossed with the recovery paths (retry, kill-and-resume, degrade).  The
last tests drive the same faults through the real HTTP service to prove a
chaotic job dies cleanly while the server stays live.
"""

import asyncio
import json
import os
import random
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.config import MinerConfig
from repro.core.miner import MPFCIMiner
from repro.data.columnar import save_shards
from repro.runtime import (
    CheckpointError,
    FaultPlan,
    ShardLossError,
    ShardSet,
    SupervisorConfig,
    has_checkpoint_header,
    load_checkpoint,
    run_sharded,
)
from repro.runtime.faults import BranchFault

from tests.strategies.databases import random_uncertain_database
from tests.test_service_http import (
    FAST_BODY,
    poll_until_terminal,
    request,
    run_service_test,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

# Process-level fault kinds: each exercises a different supervisor path
# (exception surfacing, BrokenProcessPool rebuild, timeout kill).
PROCESS_KINDS = ("raise", "exit", "hang")


@pytest.fixture(scope="module")
def database():
    return random_uncertain_database(random.Random(99), rows=140, items="abcd")


@pytest.fixture(scope="module")
def config():
    return MinerConfig(min_sup=18, pfct=0.5, exact_event_limit=12, seed=7)


@pytest.fixture(scope="module")
def serial_results(database, config):
    return MPFCIMiner(database, config).mine()


def fault(kind, attempts):
    # hang_seconds only bounds how long a leaked worker can linger: the
    # supervisor kills hung workers at the timeout.
    return BranchFault(kind, attempts=attempts, hang_seconds=30.0)


def supervisor_for(kind, max_retries):
    timeout = 1.0 if kind == "hang" else None
    return SupervisorConfig(branch_timeout_seconds=timeout, max_retries=max_retries)


class TestRetryPath:
    """Fault fires once; the retry succeeds; the answer is untouched."""

    @pytest.mark.parametrize("kind", PROCESS_KINDS)
    def test_single_fault_recovers_bit_identical(
        self, database, config, serial_results, kind
    ):
        report = run_sharded(
            ShardSet.from_database(database, 3),
            config,
            processes=2,
            supervisor=supervisor_for(kind, max_retries=2),
            fault_plan=FaultPlan(shard_faults={1: fault(kind, attempts=1)}),
        )
        assert report.results == serial_results
        assert report.complete and not report.degraded
        if kind == "hang":
            assert report.stats.shard_timeouts >= 1
        else:
            assert report.stats.shard_retries >= 1

    def test_slow_io_succeeds_without_tripping_recovery(
        self, database, config, serial_results
    ):
        plan = FaultPlan(
            shard_faults={
                1: BranchFault("slow-io", attempts=1, delay_seconds=0.3)
            }
        )
        report = run_sharded(
            ShardSet.from_database(database, 3), config, processes=2,
            fault_plan=plan,
        )
        assert report.results == serial_results
        assert report.stats.shard_retries == 0
        assert report.stats.shard_timeouts == 0


class TestLossAndResume:
    """Fault outlasts the retry budget; fail-strict dies; resume finishes."""

    @pytest.mark.parametrize("kind", PROCESS_KINDS)
    def test_fail_strict_then_resume_bit_identical(
        self, tmp_path, database, config, serial_results, kind
    ):
        shards = ShardSet.from_database(database, 3)
        path = tmp_path / "run.ckpt"
        with pytest.raises(ShardLossError, match="shard 1"):
            run_sharded(
                shards, config, processes=2,
                supervisor=supervisor_for(kind, max_retries=0),
                fault_plan=FaultPlan(shard_faults={1: fault(kind, attempts=99)}),
                checkpoint_path=path,
            )
        # The healthy shards' scans are durable; a faultless resume only
        # rescans the lost shard and must reproduce the serial answer.
        resumed = run_sharded(
            shards, config, processes=2, checkpoint_path=path,
            resume_from_checkpoint=True,
        )
        assert resumed.results == serial_results
        assert resumed.complete
        assert resumed.stats.shards_lost == 0

    @pytest.mark.parametrize("kind", PROCESS_KINDS)
    def test_degrade_bounds_survives_each_kind(self, database, config, kind):
        report = run_sharded(
            ShardSet.from_database(database, 3),
            config,
            processes=2,
            supervisor=supervisor_for(kind, max_retries=0),
            shard_policy="degrade-bounds",
            fault_plan=FaultPlan(shard_faults={1: fault(kind, attempts=99)}),
        )
        assert report.degraded and set(report.lost_shards) == {1}
        assert report.complete
        for result in report.results:
            assert result.provenance == "shard-degraded"
            low, high = result.frequency_bounds
            assert 0.0 <= low <= high <= 1.0

    def test_branch_fault_on_surviving_merge(
        self, database, config, serial_results
    ):
        """One plan can fault a shard scan *and* a mining branch."""
        plan = FaultPlan(
            branch_faults={0: fault("raise", attempts=1)},
            shard_faults={2: fault("raise", attempts=1)},
        )
        report = run_sharded(
            ShardSet.from_database(database, 3), config, processes=2,
            fault_plan=plan,
        )
        assert report.results == serial_results
        assert report.stats.shard_retries >= 1
        assert report.stats.branch_retries >= 1


_KILL_SCRIPT = """
import random, sys
from repro.core.config import MinerConfig
from repro.runtime import FaultPlan, ShardSet, run_sharded
from repro.runtime.faults import BranchFault

shards = ShardSet.from_manifest(sys.argv[1])
config = MinerConfig(min_sup=18, pfct=0.5, exact_event_limit=12, seed=7)
run_sharded(
    shards, config, processes=2,
    fault_plan=FaultPlan(shard_faults={
        2: BranchFault("slow-io", attempts=1, delay_seconds=15.0)
    }),
    checkpoint_path=sys.argv[2],
)
"""


class TestKillNineDuringShardMerge:
    def test_resume_after_kill_is_bit_identical(
        self, tmp_path, database, config, serial_results
    ):
        """SIGKILL mid-run: the shard-scan records already on disk let a
        fresh process resume straight to the merge, bit-identically."""
        manifest = save_shards(database, tmp_path / "shards", 3)
        shards = ShardSet.from_manifest(manifest)
        checkpoint_path = tmp_path / "run.ckpt"
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        child = subprocess.Popen(
            [sys.executable, "-c", _KILL_SCRIPT, str(manifest), str(checkpoint_path)],
            env=env,
            cwd=REPO_ROOT,
        )
        try:
            # Shard 2 is stuck in slow IO; wait until the two healthy
            # shards' scan records are durable, then kill without mercy.
            deadline = time.monotonic() + 60.0
            while True:
                assert child.poll() is None, "child finished before the kill"
                if has_checkpoint_header(checkpoint_path):
                    try:
                        snapshot = load_checkpoint(checkpoint_path)
                    except CheckpointError:
                        snapshot = None
                    if snapshot is not None and len(snapshot.shard_scans) >= 2:
                        break
                assert time.monotonic() < deadline, "scan records never appeared"
                time.sleep(0.05)
        finally:
            if child.poll() is None:
                os.kill(child.pid, signal.SIGKILL)
            child.wait(timeout=30)

        checkpoint = load_checkpoint(checkpoint_path)
        assert len(checkpoint.shard_scans) == 2
        assert not checkpoint.branches
        resumed = run_sharded(
            shards, config, processes=2, checkpoint_path=checkpoint_path,
            resume_from_checkpoint=True,
        )
        assert resumed.results == serial_results
        assert resumed.complete
        assert resumed.stats.checkpoint_shards_skipped == 2


CHAOS_HANG = {
    "shards": 1,
    "supervisor": {"branch_timeout_seconds": 0.5, "max_retries": 0},
    "chaos": {
        "shard_faults": {
            "0": {"kind": "hang", "attempts": 99, "hang_seconds": 5.0}
        }
    },
}


class TestServiceChaos:
    def test_hang_fault_fails_job_but_not_server(self, tmp_path):
        async def scenario(service, port):
            body = dict(FAST_BODY, **CHAOS_HANG)
            status, submitted = await request(port, "POST", "/jobs", body)
            assert status == 202
            final = await poll_until_terminal(port, submitted["job_id"])
            assert final["state"] == "failed"
            assert "ShardLossError" in final["error"]
            assert final["sharding"] == {
                "shards": 1, "shard_policy": "fail-strict",
            }

            # The server survived its job's chaos: health is green, the
            # loss shows up in the robustness aggregates, and a clean
            # submission of the same database still mines from scratch.
            status, health = await request(port, "GET", "/healthz")
            assert status == 200 and health["status"] == "ok"
            status, metrics = await request(port, "GET", "/metrics")
            assert status == 200
            assert metrics["robustness"]["shards_lost"] >= 1

            status, clean = await request(port, "POST", "/jobs", FAST_BODY)
            assert status == 202
            assert not clean["cached"] and not clean["coalesced"]
            done = await poll_until_terminal(port, clean["job_id"])
            assert done["state"] == "completed"

        asyncio.run(run_service_test(scenario)(tmp_path))

    def test_retried_chaos_job_completes_with_clean_results(self, tmp_path):
        async def scenario(service, port):
            body = dict(
                FAST_BODY,
                shards=1,
                chaos={
                    "shard_faults": {"0": {"kind": "raise", "attempts": 1}}
                },
            )
            status, submitted = await request(port, "POST", "/jobs", body)
            assert status == 202
            final = await poll_until_terminal(port, submitted["job_id"])
            assert final["state"] == "completed"
            status, chaotic = await request(
                port, "GET", f"/jobs/{submitted['job_id']}/result"
            )
            assert status == 200

            # Same database and config without chaos: the chaos job's salted
            # fingerprint must not have seeded the cache, and both paths
            # must return identical results.
            status, clean = await request(port, "POST", "/jobs", FAST_BODY)
            assert status == 202 and not clean["cached"]
            await poll_until_terminal(port, clean["job_id"])
            status, reference = await request(
                port, "GET", f"/jobs/{clean['job_id']}/result"
            )
            assert status == 200
            assert chaotic["results"] == reference["results"]

        asyncio.run(run_service_test(scenario)(tmp_path))

    def test_invalid_chaos_plan_is_a_400(self, tmp_path):
        async def scenario(service, port):
            body = dict(FAST_BODY, chaos={"shard_faults": {"0": {"kind": "nope"}}})
            status, payload = await request(port, "POST", "/jobs", body)
            assert status == 400
            assert payload["error"]["code"] == "invalid-chaos"

        asyncio.run(run_service_test(scenario)(tmp_path))
