"""Tests for the extension-event system (Section IV.B's DNF machinery).

Every probability produced by :class:`ExtensionEventSystem` is validated
against a direct possible-world computation of the event semantics:
``C_i = { w : support_w(X+e_i) = support_w(X) >= min_sup }``.
"""

import pytest
from hypothesis import given, settings

from repro.core.events import ExtensionEventSystem
from repro.core.itemsets import canonical
from repro.core.possible_worlds import enumerate_worlds, world_support
from tests.conftest import uncertain_databases


def oracle_conjunction(database, itemset, extension_items, min_sup):
    """Pr(∧ C_i) straight from the definition, by world enumeration."""
    itemset = canonical(itemset)
    total = 0.0
    for world, probability in enumerate_worlds(database):
        base_support = world_support(database, world, itemset)
        if base_support < min_sup:
            continue
        if all(
            world_support(database, world, canonical(itemset + (item,)))
            == base_support
            for item in extension_items
        ):
            total += probability
    return total


class TestEventConstruction:
    def test_paper_running_example(self, paper_db):
        events = ExtensionEventSystem(paper_db, "abc", min_sup=2)
        assert [event.item for event in events.events] == ["d"]
        event = events.events[0]
        # Pr(C_d) = (1-0.6)(1-0.7) * Pr_F({abcd}) = 0.12 * 0.81 = 0.0972.
        assert event.absent_factor == pytest.approx(0.12)
        assert event.frequent_probability == pytest.approx(0.81)
        assert event.probability == pytest.approx(0.0972)

    def test_no_events_for_maximal_itemset(self, paper_db):
        events = ExtensionEventSystem(paper_db, "abcd", min_sup=2)
        assert len(events) == 0

    def test_low_count_extensions_are_dropped(self, paper_db):
        # min_sup=3 makes the d-extension impossible (count 2 < 3).
        events = ExtensionEventSystem(paper_db, "abc", min_sup=3)
        assert len(events) == 0

    def test_certain_cooccurrence_detection(self, paper_db):
        # b always co-occurs with a (same tidset).
        events = ExtensionEventSystem(paper_db, "a", min_sup=2)
        assert events.has_certain_cooccurrence()
        events = ExtensionEventSystem(paper_db, "abc", min_sup=2)
        assert not events.has_certain_cooccurrence()


class TestEventProbabilities:
    @given(uncertain_databases(max_transactions=6, max_items=4))
    @settings(max_examples=30, deadline=None)
    def test_singletons_match_oracle(self, db):
        itemset = (db.items[0],)
        min_sup = 2
        events = ExtensionEventSystem(db, itemset, min_sup)
        for event in events.events:
            oracle = oracle_conjunction(db, itemset, [event.item], min_sup)
            assert event.probability == pytest.approx(oracle, abs=1e-9)

    @given(uncertain_databases(max_transactions=6, max_items=5))
    @settings(max_examples=30, deadline=None)
    def test_pairwise_matches_oracle(self, db):
        itemset = (db.items[0],)
        min_sup = 1
        events = ExtensionEventSystem(db, itemset, min_sup)
        for first in range(len(events.events)):
            for second in range(first + 1, len(events.events)):
                oracle = oracle_conjunction(
                    db,
                    itemset,
                    [events.events[first].item, events.events[second].item],
                    min_sup,
                )
                assert events.pairwise_probability(first, second) == pytest.approx(
                    oracle, abs=1e-9
                )

    def test_pairwise_is_memoized_and_symmetric(self, paper_db):
        events = ExtensionEventSystem(paper_db, "a", min_sup=2)
        assert len(events) >= 2
        forward = events.pairwise_probability(0, 1)
        backward = events.pairwise_probability(1, 0)
        assert forward == backward
        assert len(events._pairwise) == 1

    def test_diagonal_pairwise_is_singleton(self, paper_db):
        events = ExtensionEventSystem(paper_db, "a", min_sup=2)
        assert events.pairwise_probability(0, 0) == events.events[0].probability

    def test_conjunction_of_nothing_raises(self, paper_db):
        events = ExtensionEventSystem(paper_db, "a", min_sup=2)
        with pytest.raises(ValueError):
            events.conjunction_probability([])


class TestUnionProbability:
    def test_paper_value(self, paper_db):
        events = ExtensionEventSystem(paper_db, "abc", min_sup=2)
        # Single event: union = Pr(C_d) = 0.0972.
        assert events.union_probability_exact() == pytest.approx(0.0972)

    @given(uncertain_databases(max_transactions=6, max_items=5))
    @settings(max_examples=40, deadline=None)
    def test_union_matches_oracle(self, db):
        itemset = (db.items[0],)
        min_sup = 2
        events = ExtensionEventSystem(db, itemset, min_sup)
        oracle = 0.0
        for world, probability in enumerate_worlds(db):
            base_support = world_support(db, world, itemset)
            if base_support < min_sup:
                continue
            if any(
                world_support(db, world, canonical(itemset + (event.item,)))
                == base_support
                for event in events.events
            ):
                oracle += probability
        assert events.union_probability_exact() == pytest.approx(oracle, abs=1e-9)

    def test_union_bounded_by_singleton_sum(self, paper_db):
        events = ExtensionEventSystem(paper_db, "a", min_sup=2)
        assert events.union_probability_exact() <= sum(
            events.singleton_probabilities
        ) + 1e-12
