"""End-to-end durability: the service survives kill -9 mid-job.

The acceptance property of the service subsystem: a job SIGKILLed mid-run
is resumed by a restarted service from its branch checkpoint and completes
**bit-identical** to an uninterrupted run; resubmitting the finished work
then hits the fingerprint cache without re-mining.  Also covers the
SIGTERM contract: drain admitted jobs, then exit 0.

These tests drive the real ``python -m repro.service`` process over real
sockets, so they are the slowest in the suite (tens of seconds).
"""

import json
import os
import random
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.core.config import MinerConfig
from repro.data.io import load_uncertain_database
from repro.runtime import run_supervised
from repro.runtime.checkpoint import serialize_result

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")

# ~6s of forced-sampling mining across 8 sequential branches: slow enough
# to kill mid-run, fast enough for CI.  Everything is seeded, so the
# uninterrupted reference run is reproducible.
SLOW_CONFIG = {
    "min_sup": 1,
    "pfct": 0.3,
    "exact_event_limit": 0,
    "epsilon": 0.01,
    "seed": 7,
}


def slow_body():
    rng = random.Random(42)
    items = [chr(ord("a") + i) for i in range(8)]
    transactions = []
    for index in range(25):
        size = rng.randint(2, 5)
        transactions.append(
            {
                "tid": f"T{index + 1}",
                "probability": round(rng.uniform(0.5, 0.95), 2),
                "items": rng.sample(items, size),
            }
        )
    return {
        "database": {"transactions": transactions},
        "config": dict(SLOW_CONFIG),
        "processes": 1,
    }


def http(base, method, path, body=None, timeout=10):
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class ServiceProcess:
    """A real ``python -m repro.service`` child bound to an ephemeral port."""

    def __init__(self, data_dir):
        self.data_dir = Path(data_dir)
        self.proc = None
        self.base = None

    def start(self, timeout=30.0):
        address_file = self.data_dir / "service.json"
        address_file.unlink(missing_ok=True)
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.service",
                "--data-dir", str(self.data_dir), "--port", "0", "--workers", "1",
            ],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if address_file.exists():
                address = json.loads(address_file.read_text())
                self.base = f"http://{address['host']}:{address['port']}"
                return self
            if self.proc.poll() is not None:
                pytest.fail(
                    f"service died on startup:\n{self.proc.stdout.read()}"
                )
            time.sleep(0.05)
        pytest.fail("service.json never appeared")

    def sigkill(self):
        self.proc.kill()
        self.proc.wait(timeout=10)

    def sigterm_and_wait(self, timeout=120):
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=timeout)

    def cleanup(self):
        if self.proc is not None and self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=10)


def poll_until_terminal(base, job_id, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, payload = http(base, "GET", f"/jobs/{job_id}")
        if payload["state"] not in ("queued", "running"):
            return payload
        time.sleep(0.2)
    pytest.fail(f"job {job_id} never reached a terminal state")


def checkpoint_branch_records(path):
    if not path.exists():
        return 0
    count = 0
    for line in path.read_text().splitlines()[1:]:
        if line.strip():
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail mid-write: exactly what resume tolerates
            if record.get("kind", "branch") == "branch" or "rank" in record:
                count += 1
    return count


class TestKillMinus9Durability:
    def test_killed_job_resumes_bit_identical_and_caches(self, tmp_path):
        body = slow_body()
        service = ServiceProcess(tmp_path).start()
        try:
            status, submitted = http(service.base, "POST", "/jobs", body)
            assert status == 202
            job_id = submitted["job_id"]
            checkpoint = tmp_path / "jobs" / job_id / "checkpoint.jsonl"

            # Wait until real progress is durably on disk, then kill -9.
            deadline = time.monotonic() + 60
            while checkpoint_branch_records(checkpoint) < 2:
                assert time.monotonic() < deadline, "no checkpoint progress"
                time.sleep(0.05)
            service.sigkill()

            # The crash left the manifest mid-flight, not terminal.
            manifest = json.loads(
                (tmp_path / "jobs" / job_id / "job.json").read_text()
            )
            assert manifest["state"] in ("queued", "running")
            records_at_kill = checkpoint_branch_records(checkpoint)
            assert 0 < records_at_kill < 8, "kill did not land mid-run"

            # Restart: recovery re-admits the job and resumes its checkpoint.
            service = ServiceProcess(tmp_path).start()
            final = poll_until_terminal(service.base, job_id)
            assert final["state"] == "completed"

            status, served = http(service.base, "GET", f"/jobs/{job_id}/result")
            assert status == 200

            # Bit-identical to an uninterrupted run over the *materialized*
            # database (the exact bytes the job mined).
            database = load_uncertain_database(
                tmp_path / "jobs" / job_id / "database.utdz"
            )
            reference = run_supervised(
                database, MinerConfig(**body["config"]), processes=1
            )
            assert served["results"] == [
                serialize_result(result) for result in reference.results
            ]

            # And the completed work is now content-addressed: resubmitting
            # is served from the cache without mining.
            started = time.monotonic()
            status, resubmitted = http(service.base, "POST", "/jobs", body)
            elapsed = time.monotonic() - started
            assert status == 201
            assert resubmitted["cached"] is True
            assert elapsed < 5.0, "cache hit should not re-mine"
            status, cached = http(
                service.base, "GET", f"/jobs/{resubmitted['job_id']}/result"
            )
            assert status == 200
            assert cached["results"] == served["results"]
        finally:
            service.cleanup()


class TestSigtermDrain:
    def test_sigterm_drains_admitted_jobs_then_exits_zero(self, tmp_path):
        service = ServiceProcess(tmp_path).start()
        try:
            status, submitted = http(service.base, "POST", "/jobs", slow_body())
            assert status == 202
            job_id = submitted["job_id"]

            exit_code = service.sigterm_and_wait()
            assert exit_code == 0

            # The admitted job was drained to completion, not abandoned.
            manifest = json.loads(
                (tmp_path / "jobs" / job_id / "job.json").read_text()
            )
            assert manifest["state"] == "completed"
            assert (tmp_path / "jobs" / job_id / "result.json").exists()

            # New submissions during the drain are refused with 503.
            # (The listener is closed by then, so refusal may also surface
            # as a connection error — both prove no new work is admitted.)
            try:
                status, payload = http(service.base, "POST", "/jobs", slow_body())
            except OSError:
                pass
            else:
                assert status == 503
        finally:
            service.cleanup()
