"""Tests for exact Pr_C / Pr_FC, including the #P-hardness reduction."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.closedness import (
    closed_probability_exact,
    frequent_closed_probability_exact,
    frequent_non_closed_probability_exact,
    frequent_probability_of,
)
from repro.core.database import UncertainDatabase, paper_table4_database
from repro.core.possible_worlds import exact_probabilities
from tests.conftest import uncertain_databases


class TestPaperValues:
    def test_running_example(self, paper_db):
        assert frequent_closed_probability_exact(paper_db, "abc", 2) == pytest.approx(
            0.8754
        )
        assert frequent_closed_probability_exact(paper_db, "abcd", 2) == pytest.approx(
            0.81
        )

    def test_frequent_non_closed_of_abc(self, paper_db):
        # Pr_FNC({abc}) = Pr(C_d) = 0.0972.
        assert frequent_non_closed_probability_exact(
            paper_db, "abc", 2
        ) == pytest.approx(0.0972)

    def test_zero_probability_itemsets(self, paper_db):
        # {a} always co-occurs with b and c: never closed.
        assert frequent_closed_probability_exact(paper_db, "a", 2) == pytest.approx(0.0)
        assert frequent_closed_probability_exact(paper_db, "bc", 2) == pytest.approx(0.0)

    def test_table4_semantics_comparison(self):
        """Section II.B: Pr_FC({a}) and Pr_FC({ab}) are both only ~0.4."""
        db = paper_table4_database()
        assert frequent_closed_probability_exact(db, "a", 2) == pytest.approx(
            0.399712
        )
        assert frequent_closed_probability_exact(db, "ab", 2) == pytest.approx(
            0.39952
        )
        # While {abc} and {abcd} keep the values of Table II (0.88 and 0.99
        # per the paper's rounding of Pr_F-weighted worlds... exact: 0.8754
        # and 0.81 computed on the extended database too).
        assert frequent_closed_probability_exact(db, "abc", 2) == pytest.approx(
            0.8754
        )
        assert frequent_closed_probability_exact(db, "abcd", 2) == pytest.approx(0.81)


class TestAgainstOracle:
    @given(
        uncertain_databases(max_transactions=7, max_items=5),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_world_enumeration(self, db, min_sup):
        # Test several itemsets per database, including multi-item ones.
        items = db.items
        targets = [(items[0],), items[: min(2, len(items))], items]
        for target in targets:
            truth = exact_probabilities(db, target, min_sup)
            computed = frequent_closed_probability_exact(db, target, min_sup)
            assert computed == pytest.approx(truth["frequent_closed"], abs=1e-9)

    @given(uncertain_databases(max_transactions=7, max_items=4))
    @settings(max_examples=30, deadline=None)
    def test_closed_probability_is_min_sup_one(self, db):
        target = (db.items[0],)
        assert closed_probability_exact(db, target) == pytest.approx(
            frequent_closed_probability_exact(db, target, 1)
        )
        assert closed_probability_exact(db, target) == pytest.approx(
            exact_probabilities(db, target, 1)["closed"], abs=1e-9
        )

    @given(uncertain_databases(max_transactions=7, max_items=4))
    @settings(max_examples=30, deadline=None)
    def test_decomposition_identity(self, db):
        """Pr_FC = Pr_F - Pr_FNC (Definition 4.1)."""
        target = (db.items[0],)
        frequent = frequent_probability_of(db, target, 2)
        non_closed = frequent_non_closed_probability_exact(db, target, 2)
        closed = frequent_closed_probability_exact(db, target, 2)
        assert closed == pytest.approx(frequent - non_closed, abs=1e-9)


def build_mdnf_reduction(clauses, num_variables):
    """The Theorem 3.1 construction: monotone DNF -> uncertain database.

    Transactions T_1..T_m (one per variable, probability 1/2) all contain X;
    T_j additionally contains e_i iff v_j does NOT appear in clause C_i.
    """
    rows = []
    for variable in range(num_variables):
        items = ["X"]
        for index, clause in enumerate(clauses):
            if variable not in clause:
                items.append(f"e{index}")
        rows.append((f"T{variable}", tuple(items), 0.5))
    return UncertainDatabase.from_rows(rows)


def count_satisfying_assignments(clauses, num_variables):
    return sum(
        1
        for assignment in itertools.product([False, True], repeat=num_variables)
        if any(all(assignment[v] for v in clause) for clause in clauses)
    )


class TestHardnessReduction:
    """Verify the claim inside the Theorem 3.1 proof on concrete formulas:

    X is NOT closed with probability N / 2^m, i.e.
    ``1 - Pr_C(X) = N / 2^m`` with N the number of satisfying assignments.
    """

    @pytest.mark.parametrize(
        "clauses,num_variables",
        [
            ([(0, 1)], 2),
            ([(0,), (1,)], 2),
            ([(0, 1, 2), (0, 1, 3), (1, 2, 3)], 4),  # the paper's example
            ([(0, 1), (1, 2), (2, 3)], 4),
            ([(0,)], 3),
        ],
    )
    def test_reduction_identity(self, clauses, num_variables):
        db = build_mdnf_reduction(clauses, num_variables)
        n_satisfying = count_satisfying_assignments(clauses, num_variables)
        closed = closed_probability_exact(db, ("X",))
        assert 1.0 - closed == pytest.approx(n_satisfying / 2**num_variables)
