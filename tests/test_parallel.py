"""Tests for parallel branch mining."""

import random

import pytest

from repro.core.config import MinerConfig
from repro.core.database import UncertainDatabase
from repro.core.miner import MPFCIMiner
from repro.core.parallel import mine_pfci_parallel


class TestParallelMining:
    def test_paper_example(self, paper_db):
        config = MinerConfig(min_sup=2, pfct=0.8)
        results = mine_pfci_parallel(paper_db, config, processes=2)
        by_itemset = {r.itemset: r.probability for r in results}
        assert set(by_itemset) == {("a", "b", "c"), ("a", "b", "c", "d")}
        assert by_itemset[("a", "b", "c")] == pytest.approx(0.8754)

    @pytest.mark.parametrize("seed", range(4))
    def test_identical_to_serial_on_exact_path(self, seed):
        rng = random.Random(seed)
        rows = []
        for index in range(10):
            size = rng.randint(1, 5)
            rows.append(
                (f"T{index}", tuple(rng.sample("abcde", size)),
                 round(rng.uniform(0.1, 0.99), 3))
            )
        db = UncertainDatabase.from_rows(rows)
        config = MinerConfig(min_sup=2, pfct=0.4, exact_event_limit=64)
        serial = [
            (r.itemset, round(r.probability, 12))
            for r in MPFCIMiner(db, config).mine()
        ]
        parallel = [
            (r.itemset, round(r.probability, 12))
            for r in mine_pfci_parallel(db, config, processes=2)
        ]
        assert serial == parallel

    def test_empty_candidate_set(self):
        db = UncertainDatabase.from_rows([("T1", "a", 0.1)])
        config = MinerConfig(min_sup=1, pfct=0.9)
        assert mine_pfci_parallel(db, config, processes=2) == []

    def test_single_process_works(self, paper_db):
        config = MinerConfig(min_sup=2, pfct=0.8)
        results = mine_pfci_parallel(paper_db, config, processes=1)
        assert len(results) == 2

    def test_deterministic_across_runs(self, paper_db):
        config = MinerConfig(min_sup=2, pfct=0.8, exact_event_limit=0)
        first = [(r.itemset, r.probability)
                 for r in mine_pfci_parallel(paper_db, config, processes=2)]
        second = [(r.itemset, r.probability)
                  for r in mine_pfci_parallel(paper_db, config, processes=2)]
        assert first == second
