"""Tests for likely-frequent-item mining over probabilistic streams."""

import random

import pytest

from repro.core.support import frequent_probability
from repro.uncertain.stream import ProbabilisticItemStream


def feed(stream, arrivals):
    for item, probability in arrivals:
        stream.append(item, probability)


class TestMaintenance:
    def test_landmark_accumulates(self):
        stream = ProbabilisticItemStream()
        feed(stream, [("a", 0.5), ("b", 0.9), ("a", 0.4)])
        assert len(stream) == 3
        assert stream.total_arrivals == 3
        assert stream.expected_count("a") == pytest.approx(0.9)
        assert stream.items() == ["a", "b"]

    def test_sliding_window_evicts_oldest(self):
        stream = ProbabilisticItemStream(window=2)
        feed(stream, [("a", 0.5), ("b", 0.9), ("a", 0.4)])
        assert len(stream) == 2
        assert stream.total_arrivals == 3
        # The first "a" (0.5) left the window.
        assert stream.expected_count("a") == pytest.approx(0.4)
        assert stream.expected_count("b") == pytest.approx(0.9)

    def test_eviction_removes_empty_items(self):
        stream = ProbabilisticItemStream(window=1)
        feed(stream, [("a", 0.5), ("b", 0.9)])
        assert stream.items() == ["b"]
        assert stream.expected_count("a") == 0.0

    def test_long_run_matches_naive_tail_window(self):
        """Sliding eviction over many wraparounds: the maintained per-item
        state always equals a naive last-W tail of the arrival list."""
        rng = random.Random(4)
        stream = ProbabilisticItemStream(window=5)
        tail = []
        for _ in range(200):
            item = rng.choice("abc")
            probability = round(rng.uniform(0.1, 1.0), 3)
            stream.append(item, probability)
            tail = (tail + [(item, probability)])[-5:]
            for candidate in "abc":
                probabilities = [p for it, p in tail if it == candidate]
                assert stream.expected_count(candidate) == pytest.approx(
                    sum(probabilities)
                )
                assert stream.frequent_probability(candidate, 2) == pytest.approx(
                    frequent_probability(probabilities, 2)
                )
        assert len(stream) == 5
        assert stream.total_arrivals == 200

    def test_validation(self):
        with pytest.raises(ValueError):
            ProbabilisticItemStream(window=0)
        stream = ProbabilisticItemStream()
        with pytest.raises(ValueError):
            stream.append("a", 0.0)
        with pytest.raises(ValueError):
            stream.append("a", 1.5)


class TestExactQueries:
    def test_frequent_probability_matches_core_dp(self):
        stream = ProbabilisticItemStream()
        probabilities = [0.3, 0.8, 0.6, 0.9]
        feed(stream, [("x", value) for value in probabilities])
        for min_sup in (1, 2, 3, 4, 5):
            assert stream.frequent_probability("x", min_sup) == pytest.approx(
                frequent_probability(probabilities, min_sup)
            )

    def test_likely_frequent_items(self):
        stream = ProbabilisticItemStream()
        feed(stream, [("hot", 0.9)] * 10 + [("cold", 0.1)] * 10)
        results = dict(stream.likely_frequent_items(min_sup=5, pft=0.8))
        assert "hot" in results
        assert "cold" not in results
        assert results["hot"] == pytest.approx(
            frequent_probability([0.9] * 10, 5)
        )

    def test_threshold_strictness(self):
        stream = ProbabilisticItemStream()
        feed(stream, [("a", 0.9), ("a", 0.9)])
        value = frequent_probability([0.9, 0.9], 2)  # 0.81
        assert stream.likely_frequent_items(2, value) == []
        assert stream.likely_frequent_items(2, value - 1e-9) == [
            ("a", pytest.approx(0.81))
        ]

    def test_ch_screening_never_drops_results(self):
        """The CH filter is an optimization, not a semantics change."""
        rng = random.Random(5)
        stream = ProbabilisticItemStream()
        for _ in range(200):
            stream.append(rng.choice("abcdef"), round(rng.uniform(0.05, 1.0), 2))
        fast = stream.likely_frequent_items(min_sup=15, pft=0.5)
        # Recompute without screening: brute force over all items.
        slow = []
        for item in stream.items():
            probability = stream.frequent_probability(item, 15)
            if probability > 0.5:
                slow.append((item, probability))
        slow.sort(key=lambda pair: (-pair[1], str(pair[0])))
        assert [(i, round(p, 9)) for i, p in fast] == [
            (i, round(p, 9)) for i, p in slow
        ]

    def test_windowed_semantics(self):
        """Only in-window arrivals count."""
        stream = ProbabilisticItemStream(window=3)
        feed(stream, [("a", 0.9)] * 6)
        assert stream.frequent_probability("a", 3) == pytest.approx(0.9**3)
        assert stream.frequent_probability("a", 4) == 0.0

    def test_validation(self):
        stream = ProbabilisticItemStream()
        stream.append("a", 0.5)
        with pytest.raises(ValueError):
            stream.likely_frequent_items(0, 0.5)
        with pytest.raises(ValueError):
            stream.likely_frequent_items(1, 1.0)


class TestSampledQueries:
    def test_tracks_exact_on_clear_cases(self):
        stream = ProbabilisticItemStream()
        feed(stream, [("hot", 0.95)] * 12 + [("cold", 0.05)] * 12)
        exact = {i for i, _p in stream.likely_frequent_items(6, 0.8)}
        sampled = {
            i
            for i, _p in stream.likely_frequent_items_sampled(
                6, 0.8, epsilon=0.05, delta=0.05, rng=random.Random(1)
            )
        }
        assert exact == sampled == {"hot"}

    def test_estimates_are_close(self):
        stream = ProbabilisticItemStream()
        probabilities = [0.7, 0.4, 0.9, 0.6, 0.8]
        feed(stream, [("x", value) for value in probabilities])
        exact = stream.frequent_probability("x", 3)
        (item, estimate), = stream.likely_frequent_items_sampled(
            3, 0.0, epsilon=0.02, delta=0.02, rng=random.Random(7)
        )
        assert item == "x"
        assert estimate == pytest.approx(exact, abs=0.03)

    def test_deterministic_with_seed(self):
        stream = ProbabilisticItemStream()
        feed(stream, [("a", 0.6)] * 8)
        first = stream.likely_frequent_items_sampled(
            3, 0.1, rng=random.Random(3)
        )
        second = stream.likely_frequent_items_sampled(
            3, 0.1, rng=random.Random(3)
        )
        assert first == second

    def test_validation(self):
        stream = ProbabilisticItemStream()
        stream.append("a", 0.5)
        with pytest.raises(ValueError):
            stream.likely_frequent_items_sampled(1, 0.5, epsilon=0.0)
        with pytest.raises(ValueError):
            stream.likely_frequent_items_sampled(1, 0.5, delta=1.0)
