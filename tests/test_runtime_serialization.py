"""Round-trip tests for the runtime's JSON-safe serializers.

The service ships these objects over HTTP and persists them in manifests,
checkpoints, and the result cache, so every serializer must satisfy two
properties: the payload is pure JSON (``json.dumps`` works, no dataclass
leaks), and deserializing it reconstructs an equivalent object.
"""

import json

import pytest

from repro.core.config import MinerConfig
from repro.core.database import UncertainDatabase, paper_table2_database
from repro.core.stats import MiningStats
from repro.runtime import SupervisorReport, fingerprint, run_supervised
from repro.runtime.supervisor import BranchOutcome


@pytest.fixture(scope="module")
def database():
    return paper_table2_database()


@pytest.fixture(scope="module")
def config():
    return MinerConfig(min_sup=2, pfct=0.5, exact_event_limit=12, seed=7)


@pytest.fixture(scope="module")
def report(database, config):
    return run_supervised(database, config, processes=2)


class TestFingerprint:
    def test_is_sha256_hex(self, database, config):
        digest = fingerprint(database, config)
        assert len(digest) == 64
        assert set(digest) <= set("0123456789abcdef")

    def test_deterministic(self, database, config):
        assert fingerprint(database, config) == fingerprint(database, config)

    def test_sensitive_to_config(self, database, config):
        other = MinerConfig(min_sup=3, pfct=0.5, exact_event_limit=12, seed=7)
        assert fingerprint(database, config) != fingerprint(database, other)

    def test_sensitive_to_database(self, database, config):
        other = UncertainDatabase.from_rows(
            [("T1", ["a", "b"], 0.9), ("T2", ["a"], 0.5)]
        )
        assert fingerprint(other, config) != fingerprint(database, config)

    def test_insensitive_to_equal_copies(self, database, config):
        clone = UncertainDatabase.from_rows(
            [(t.tid, list(t.items), t.probability) for t in database]
        )
        assert fingerprint(clone, config) == fingerprint(database, config)


class TestMiningStatsSnapshot:
    def test_round_trip(self):
        stats = MiningStats()
        stats.itemsets_generated = 17
        stats.degraded_checks = 3
        stats.checks_performed = 12
        stats.branches_cancelled = 2
        snapshot = stats.snapshot()
        json.dumps(snapshot)  # JSON-safe
        restored = MiningStats.from_snapshot(snapshot)
        assert restored.as_dict() == stats.as_dict()

    def test_unknown_keys_ignored(self):
        stats = MiningStats()
        stats.checks_performed = 5
        snapshot = stats.snapshot()
        snapshot["counter_from_the_future"] = 99
        restored = MiningStats.from_snapshot(snapshot)
        assert restored.checks_performed == 5
        assert not hasattr(restored, "counter_from_the_future")

    def test_degraded_fraction(self):
        stats = MiningStats()
        assert stats.degraded_fraction == 0.0  # no checks: defined as zero
        stats.checks_performed = 8
        stats.degraded_checks = 2
        assert stats.degraded_fraction == pytest.approx(0.25)
        assert stats.report()["derived"]["degraded_fraction"] == pytest.approx(0.25)


class TestBranchOutcome:
    def test_round_trip(self):
        outcome = BranchOutcome(
            rank=3, item="f", status="recovered-inline", attempts=2,
            error="FaultInjected: scripted",
        )
        payload = outcome.to_dict()
        json.dumps(payload)
        assert BranchOutcome.from_dict(payload) == outcome


class TestSupervisorReportSerialization:
    def test_payload_is_json_safe(self, report):
        json.dumps(report.to_dict())

    def test_round_trip_preserves_results(self, report):
        restored = SupervisorReport.from_dict(report.to_dict())
        assert [r.itemset for r in restored.results] == [
            r.itemset for r in report.results
        ]
        assert [r.probability for r in restored.results] == [
            r.probability for r in report.results
        ]
        assert [r.provenance for r in restored.results] == [
            r.provenance for r in report.results
        ]

    def test_round_trip_preserves_outcomes_and_flags(self, report):
        restored = SupervisorReport.from_dict(report.to_dict())
        assert restored.outcomes == report.outcomes
        assert restored.complete == report.complete
        assert restored.cancelled == report.cancelled
        assert restored.stats.as_dict() == report.stats.as_dict()

    def test_double_round_trip_is_stable(self, report):
        once = report.to_dict()
        twice = SupervisorReport.from_dict(once).to_dict()
        assert once == twice
