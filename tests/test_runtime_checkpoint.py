"""Checkpoint/resume tests: durability, bit-identical continuation, refusal.

The contract under test (docs/robustness.md): interrupting a supervised run
and resuming from its checkpoint yields the *same* results — bit-identical
probabilities, same ordering — and merged stats equal to the uninterrupted
run's on every mining counter; a checkpoint from a different (database,
config) pair is refused with a named mismatch.
"""

import json

import pytest

from repro.core.config import MinerConfig
from repro.core.database import UncertainDatabase, paper_table2_database
from repro.core.miner import MPFCIMiner, ProbabilisticFrequentClosedItemset
from repro.core.stats import MiningStats
from repro.runtime import (
    BranchFailedError,
    BranchFault,
    CheckpointError,
    CheckpointMismatchError,
    FaultPlan,
    SupervisorConfig,
    config_fingerprint,
    load_checkpoint,
    resume,
    run_supervised,
    validate_fingerprint,
)
from repro.runtime.checkpoint import (
    CheckpointWriter,
    deserialize_result,
    serialize_result,
)

# Mining counters must merge identically across interrupted and
# uninterrupted runs; supervision/checkpoint bookkeeping legitimately
# differs (a resumed run dispatches fewer branches and skips some), and
# wall-clock floats are never comparable.
SUPERVISION_FIELDS = {
    "branches_dispatched",
    "branch_retries",
    "branch_timeouts",
    "branch_collateral_restarts",
    "pool_rebuilds",
    "branches_recovered_inline",
    "branches_failed",
    "checkpoint_branches_written",
    "checkpoint_branches_skipped",
}


def mining_counters(stats: MiningStats):
    return {
        name: value
        for name, value in stats.as_dict().items()
        if isinstance(value, int) and name not in SUPERVISION_FIELDS
    }


def result_key(results):
    return [
        (
            result.itemset,
            result.probability,
            result.lower,
            result.upper,
            result.method,
            result.frequent_probability,
            result.provenance,
        )
        for result in results
    ]


@pytest.fixture(scope="module")
def database():
    return paper_table2_database()


@pytest.fixture(scope="module")
def config():
    return MinerConfig(min_sup=2, pfct=0.5, exact_event_limit=12, seed=7)


class TestSerialization:
    def test_result_roundtrip_is_bitwise(self):
        result = ProbabilisticFrequentClosedItemset(
            itemset=("a", "c"),
            probability=0.1 + 0.2,  # 0.30000000000000004: repr-exact roundtrip
            lower=1.0 / 3.0,
            upper=2.0 / 3.0,
            method="sampled",
            frequent_probability=0.875400000000001,
            provenance="approx-degraded",
        )
        payload = json.loads(json.dumps(serialize_result(result)))
        assert deserialize_result(payload) == result

    def test_provenance_defaults_to_exact_on_old_records(self):
        payload = serialize_result(
            ProbabilisticFrequentClosedItemset(("a",), 0.9, 0.9, 0.9, "exact", 0.9)
        )
        del payload["provenance"]
        assert deserialize_result(payload).provenance == "exact"


class TestCheckpointFile:
    def test_roundtrip(self, tmp_path, database, config):
        path = tmp_path / "run.ckpt"
        report = run_supervised(database, config, processes=2, checkpoint_path=path)
        checkpoint = load_checkpoint(path)
        assert checkpoint.fingerprint == config_fingerprint(database, config)
        assert len(checkpoint.branches) == len(report.outcomes)
        restored = [
            result
            for rank in sorted(checkpoint.branches)
            for result in checkpoint.branches[rank].results
        ]
        restored.sort(key=lambda result: (len(result.itemset), result.itemset))
        assert result_key(restored) == result_key(report.results)
        assert report.stats.checkpoint_branches_written == len(checkpoint.branches)

    def test_truncated_final_line_is_tolerated(self, tmp_path, database, config):
        path = tmp_path / "run.ckpt"
        run_supervised(database, config, processes=2, checkpoint_path=path)
        complete = load_checkpoint(path)
        # Simulate a crash mid-append: the last line is half-written.
        text = path.read_text()
        keep = text.rindex("\n", 0, len(text) - 1) + 1
        path.write_text(text[:keep] + '{"kind": "bra')
        truncated = load_checkpoint(path)
        assert len(truncated.branches) == len(complete.branches) - 1
        assert truncated.valid_bytes == keep

    def test_unterminated_final_line_is_discarded_even_if_it_parses(
        self, tmp_path, database, config
    ):
        """A crash can land between the payload write and its newline hitting
        disk; the line parses but was never durably committed."""
        path = tmp_path / "run.ckpt"
        run_supervised(database, config, processes=2, checkpoint_path=path)
        complete = load_checkpoint(path)
        assert complete.valid_bytes == path.stat().st_size
        text = path.read_text()
        path.write_text(text[:-1])  # strip only the final newline
        truncated = load_checkpoint(path)
        assert len(truncated.branches) == len(complete.branches) - 1
        assert truncated.valid_bytes == text.rindex("\n", 0, len(text) - 1) + 1

    def test_mid_file_corruption_raises(self, tmp_path, database, config):
        path = tmp_path / "run.ckpt"
        run_supervised(database, config, processes=2, checkpoint_path=path)
        lines = path.read_text().splitlines(True)
        lines[1] = "NOT JSON\n"
        path.write_text("".join(lines))
        with pytest.raises(CheckpointError, match="corrupt"):
            load_checkpoint(path)

    def test_missing_or_headerless_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="does not exist"):
            load_checkpoint(tmp_path / "absent.ckpt")
        path = tmp_path / "headerless.ckpt"
        path.write_text('{"kind": "branch", "rank": 0}\n')
        with pytest.raises(CheckpointError, match="header"):
            load_checkpoint(path)

    def test_fresh_writer_truncates(self, tmp_path, database, config):
        path = tmp_path / "run.ckpt"
        path.write_text("stale content that is not a checkpoint\n")
        with CheckpointWriter(path, config_fingerprint(database, config)):
            pass
        checkpoint = load_checkpoint(path)
        assert checkpoint.branches == {}


class TestResume:
    def test_interrupted_run_resumes_bit_identically(self, tmp_path, database, config):
        """The acceptance scenario: a run is killed partway (fail_fast on an
        always-faulting branch), then resumed without the fault.  Results
        and merged mining counters equal the uninterrupted run's."""
        uninterrupted = run_supervised(database, config, processes=2)

        path = tmp_path / "run.ckpt"
        plan = FaultPlan({3: BranchFault("raise", attempts=99)})
        with pytest.raises(BranchFailedError):
            run_supervised(
                database, config, processes=2, checkpoint_path=path,
                supervisor=SupervisorConfig(max_retries=0, fail_fast=True),
                fault_plan=plan,
            )
        interrupted = load_checkpoint(path)
        assert 0 < len(interrupted.branches) < len(uninterrupted.outcomes)

        resumed = resume(database, config, path, processes=2)
        assert result_key(resumed.results) == result_key(uninterrupted.results)
        assert mining_counters(resumed.stats) == mining_counters(uninterrupted.stats)
        assert resumed.stats.checkpoint_branches_skipped == len(interrupted.branches)
        statuses = {o.rank: o.status for o in resumed.outcomes}
        for rank in interrupted.branches:
            assert statuses[rank] == "checkpointed"

        # The checkpoint now holds every branch: resuming again mines nothing.
        idle = resume(database, config, path, processes=2)
        assert result_key(idle.results) == result_key(uninterrupted.results)
        assert idle.stats.branches_dispatched == 0

    def test_resume_refuses_mismatched_config(self, tmp_path, database, config):
        path = tmp_path / "run.ckpt"
        run_supervised(database, config, processes=2, checkpoint_path=path)
        with pytest.raises(CheckpointMismatchError, match="min_sup"):
            resume(database, config.variant(min_sup=3), path)
        with pytest.raises(CheckpointMismatchError, match="seed"):
            resume(database, config.variant(seed=8), path)

    def test_resume_refuses_mismatched_database(self, tmp_path, database, config):
        path = tmp_path / "run.ckpt"
        run_supervised(database, config, processes=2, checkpoint_path=path)
        smaller = UncertainDatabase(list(database)[:-1])
        with pytest.raises(CheckpointMismatchError, match="database_sha256"):
            resume(smaller, config, path)

    def test_validate_fingerprint_names_first_difference(self, database, config):
        fingerprint = config_fingerprint(database, config)
        other = config_fingerprint(database, config.variant(pfct=0.25))
        with pytest.raises(CheckpointMismatchError, match="pfct"):
            validate_fingerprint(other, fingerprint, "x.ckpt")
        validate_fingerprint(fingerprint, dict(fingerprint), "x.ckpt")  # equal: ok

    def test_resume_after_truncated_tail_remines_that_branch(
        self, tmp_path, database, config
    ):
        path = tmp_path / "run.ckpt"
        uninterrupted = run_supervised(database, config, processes=2, checkpoint_path=path)
        text = path.read_text()
        path.write_text(text[: text.rindex("\n", 0, len(text) - 1) + 1] + '{"kind"')
        resumed = resume(database, config, path, processes=2)
        assert result_key(resumed.results) == result_key(uninterrupted.results)
        assert resumed.stats.branches_dispatched == 1

        # The resume must have truncated the partial tail before appending:
        # the healed file parses cleanly, holds every branch, and survives a
        # *second* crash/resume cycle (this used to merge the re-mined
        # record onto the partial line, corrupting the file mid-way).
        healed = load_checkpoint(path)
        assert len(healed.branches) == len(uninterrupted.outcomes)
        assert healed.valid_bytes == path.stat().st_size
        again = resume(database, config, path, processes=2)
        assert again.stats.branches_dispatched == 0
        assert result_key(again.results) == result_key(uninterrupted.results)

        text = path.read_text()
        path.write_text(text[: text.rindex("\n", 0, len(text) - 1) + 1] + '{"ki')
        twice = resume(database, config, path, processes=2)
        assert twice.stats.branches_dispatched == 1
        assert result_key(twice.results) == result_key(uninterrupted.results)
        assert load_checkpoint(path).valid_bytes == path.stat().st_size

    def test_fresh_checkpoint_refuses_to_overwrite_existing(
        self, tmp_path, database, config
    ):
        """--checkpoint on a path holding a previous run's checkpoint must
        not truncate it — that flag mix-up is exactly the interrupted-run
        scenario the feature protects."""
        path = tmp_path / "run.ckpt"
        first = run_supervised(database, config, processes=2, checkpoint_path=path)
        before = path.read_bytes()
        with pytest.raises(CheckpointError, match="already holds a checkpoint"):
            run_supervised(database, config, processes=2, checkpoint_path=path)
        assert path.read_bytes() == before  # untouched
        resumed = resume(database, config, path, processes=2)  # --resume still works
        assert result_key(resumed.results) == result_key(first.results)


class TestDiskFullDuringAppend:
    """ENOSPC (or any OSError) on a checkpoint append must fail loudly and
    locally: one actionable error, the durable prefix still resumable, the
    supervised run ending *failed* — never hung, never corrupted."""

    @staticmethod
    def _enospc_handle(handle):
        import errno
        import io

        class Full(io.TextIOBase):
            def fileno(self):
                return handle.fileno()

            def write(self, text):
                raise OSError(errno.ENOSPC, "No space left on device")

        return Full()

    def test_writer_raises_actionable_error_and_retires(
        self, tmp_path, database, config
    ):
        from repro.runtime.checkpoint import CheckpointWriteError

        path = tmp_path / "run.ckpt"
        writer = CheckpointWriter(path, config_fingerprint(database, config))
        durable = path.read_bytes()
        writer._handle = self._enospc_handle(writer._handle)
        with pytest.raises(CheckpointWriteError, match="free disk space"):
            writer.write_shard_scan(0, 4, [])
        # Retired: later appends fail fast instead of corrupting the file.
        with pytest.raises(CheckpointError, match="writer is closed"):
            writer.write_branch(0, "a", [], MiningStats())
        # The durable prefix (the header) is still a loadable checkpoint.
        assert path.read_bytes() == durable
        loaded = load_checkpoint(path)
        validate_fingerprint(
            loaded.fingerprint, config_fingerprint(database, config), path
        )

    def test_supervised_run_fails_branch_but_never_hangs(
        self, tmp_path, database, config, monkeypatch
    ):
        from repro.runtime import checkpoint as checkpoint_module

        original = checkpoint_module.CheckpointWriter._write_line

        enospc = TestDiskFullDuringAppend._enospc_handle

        def failing(self, payload):
            # Poison the handle for branch records only: the write then
            # fails *inside* ``_write_line``, exercising the real
            # OSError → CheckpointWriteError wrapping and retirement.
            if payload.get("kind") == "branch" and self._handle is not None:
                self._handle = enospc(self._handle)
            return original(self, payload)

        monkeypatch.setattr(
            checkpoint_module.CheckpointWriter, "_write_line", failing
        )
        path = tmp_path / "run.ckpt"
        report = run_supervised(
            database, config, processes=2, checkpoint_path=path
        )
        assert not report.complete
        assert len(report.failed) >= 1
        for outcome in report.failed:
            assert "checkpoint append failed" in outcome.error
            assert "free disk space" in outcome.error
        # The header-only file is still a valid checkpoint; once space is
        # back (monkeypatch undone), resume completes bit-identically.
        monkeypatch.undo()
        serial = MPFCIMiner(database, config).mine()
        resumed = resume(database, config, path, processes=2)
        assert result_key(resumed.results) == result_key(serial)
