"""Property tests for the incremental Poisson-binomial PMF operations.

``pmf_add`` / ``pmf_remove`` are the O(n) convolution-peeling updates the
streaming monitor maintains per-item support PMFs with; these tests pin
their algebra (add then remove is the identity, removal matches the DP on
the remaining probabilities) and the maintained-window invariant: across
hundreds of random slides, the incrementally maintained PMF never drifts
from ``support_pmf`` recomputed from scratch.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.support import (
    PMFStabilityError,
    frequent_probability,
    pmf_add,
    pmf_remove,
    support_pmf,
)

from tests.strategies import probability_lists


class TestPmfAdd:
    def test_single_bernoulli(self):
        assert pmf_add([1.0], 0.3) == pytest.approx([0.7, 0.3])

    def test_matches_support_pmf(self):
        probabilities = [0.2, 0.9, 0.5]
        pmf = [1.0]
        for probability in probabilities:
            pmf = pmf_add(pmf, probability)
        assert pmf == pytest.approx(list(support_pmf(probabilities)), abs=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            pmf_add([1.0], 1.5)
        with pytest.raises(ValueError):
            pmf_add([1.0], -0.1)


class TestPmfRemove:
    @given(probabilities=probability_lists(max_size=12))
    @settings(max_examples=200, deadline=None)
    def test_add_then_remove_is_identity(self, probabilities):
        """Removing the probability just added returns the original PMF
        to 1e-12 — for any probability, including the p=0 / p=1 edges."""
        pmf = support_pmf([0.3, 0.8, 0.55])
        for probability in probabilities:
            roundtrip = pmf_remove(pmf_add(pmf, probability), probability)
            assert np.max(np.abs(roundtrip - pmf)) <= 1e-12

    @given(
        probabilities=probability_lists(max_size=10),
        extra=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_remove_matches_scratch_dp(self, probabilities, extra):
        """Peeling one probability equals ``support_pmf`` of the remainder."""
        pmf = support_pmf(probabilities + [extra])
        try:
            peeled = pmf_remove(pmf, extra)
        except PMFStabilityError:
            # Legal outcome for numerically hopeless deconvolutions; the
            # caller falls back to the full DP.
            return
        assert np.max(np.abs(peeled - support_pmf(probabilities))) <= 1e-9

    def test_certain_transaction_removal(self):
        # p = 1 shifts the PMF; deconvolution must shift it back exactly.
        pmf = support_pmf([1.0, 0.4, 0.7])
        assert pmf_remove(pmf, 1.0) == pytest.approx(
            list(support_pmf([0.4, 0.7])), abs=1e-12
        )

    def test_impossible_transaction_removal(self):
        pmf = support_pmf([0.0, 0.4])
        assert pmf_remove(pmf, 0.0) == pytest.approx(
            list(support_pmf([0.4])), abs=1e-12
        )

    def test_stability_error_on_inconsistent_pmf(self):
        # A PMF claiming support >= 1 always cannot lose a p=1 row it never
        # contained consistently: pmf[0] must be ~0 for a certain removal.
        with pytest.raises(PMFStabilityError):
            pmf_remove([0.5, 0.5], 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            pmf_remove([1.0], 0.5)  # nothing left to remove
        with pytest.raises(ValueError):
            pmf_remove([0.5, 0.5], 1.5)


class TestMaintainedWindowPmf:
    def test_hundred_random_slides_match_scratch(self):
        """The streaming invariant: a PMF maintained by add/remove peeling
        over >= 100 random slides matches the scratch DP at every step."""
        rng = random.Random(20120401)
        window = []
        pmf = np.array([1.0])
        capacity = 12
        for slide in range(120):
            probability = round(rng.uniform(0.01, 1.0), 3)
            window.append(probability)
            pmf = pmf_add(pmf, probability)
            if len(window) > capacity:
                oldest = window.pop(0)
                pmf = pmf_remove(pmf, oldest)
            scratch = support_pmf(window)
            assert np.max(np.abs(pmf - scratch)) <= 1e-9, f"slide {slide}"
            # The derived tail (Pr_F) stays equally tight.
            for min_sup in (1, len(window) // 2, len(window)):
                assert float(np.sum(pmf[min_sup:])) == pytest.approx(
                    frequent_probability(window, min_sup), abs=1e-9
                )
