"""Tests for the possible-world oracle itself (Table III semantics)."""

import pytest
from hypothesis import given, settings

from repro.core.database import UncertainDatabase
from repro.core.possible_worlds import (
    MAX_ENUMERABLE_TRANSACTIONS,
    enumerate_worlds,
    exact_frequent_closed_itemsets,
    exact_probabilities,
    sample_world,
    world_is_closed,
    world_is_frequent,
    world_support,
)
from repro.core.support import frequent_probability
from tests.conftest import uncertain_databases


class TestEnumeration:
    def test_probabilities_sum_to_one(self, paper_db):
        total = sum(probability for _world, probability in enumerate_worlds(paper_db))
        assert total == pytest.approx(1.0)

    def test_number_of_worlds(self, paper_db):
        assert sum(1 for _ in enumerate_worlds(paper_db)) == 16

    def test_pw5_probability_matches_table3(self, paper_db):
        worlds = dict(enumerate_worlds(paper_db))
        assert worlds[(0, 1, 2)] == pytest.approx(0.0378)

    def test_certain_transaction_prunes_worlds(self):
        db = UncertainDatabase.from_rows([("T1", "a", 1.0), ("T2", "b", 0.5)])
        worlds = list(enumerate_worlds(db))
        # Worlds dropping the certain transaction have probability 0.
        assert len(worlds) == 2
        assert all(0 in world for world, _p in worlds)

    def test_refuses_large_databases(self):
        rows = [(f"T{i}", "a", 0.5) for i in range(MAX_ENUMERABLE_TRANSACTIONS + 1)]
        with pytest.raises(ValueError, match="refusing"):
            list(enumerate_worlds(UncertainDatabase.from_rows(rows)))

    @given(uncertain_databases(max_transactions=6))
    @settings(max_examples=25, deadline=None)
    def test_random_databases_sum_to_one(self, db):
        total = sum(probability for _world, probability in enumerate_worlds(db))
        assert total == pytest.approx(1.0)


class TestWorldPredicates:
    def test_world_support(self, paper_db):
        assert world_support(paper_db, (0, 1, 3), "abc") == 3
        assert world_support(paper_db, (0, 1, 3), "d") == 2
        assert world_support(paper_db, (), "a") == 0

    def test_world_is_frequent(self, paper_db):
        assert world_is_frequent(paper_db, (0, 3), "abcd", 2)
        assert not world_is_frequent(paper_db, (0,), "abcd", 2)

    def test_absent_itemset_is_not_closed(self, paper_db):
        # Convention from the hardness proof: support 0 => not closed.
        assert not world_is_closed(paper_db, (), "a")

    def test_closedness_in_concrete_worlds(self, paper_db):
        # World {T1, T2}: {abc} closed (T2 realizes it exactly); {ab} not.
        assert world_is_closed(paper_db, (0, 1), ("a", "b", "c"))
        assert not world_is_closed(paper_db, (0, 1), ("a", "b"))
        # World {T1, T4}: only {abcd} is closed.
        assert world_is_closed(paper_db, (0, 3), ("a", "b", "c", "d"))
        assert not world_is_closed(paper_db, (0, 3), ("a", "b", "c"))


class TestExactProbabilities:
    def test_consistency_with_dp(self, paper_db):
        """Pr_F from world enumeration equals the Poisson-binomial DP."""
        for itemset in ("a", "abc", "abcd", "d"):
            enumerated = exact_probabilities(paper_db, itemset, 2)["frequent"]
            probabilities = paper_db.tidset_probabilities(paper_db.tidset(itemset))
            assert enumerated == pytest.approx(
                frequent_probability(probabilities, 2)
            )

    @given(uncertain_databases(max_transactions=6, max_items=4))
    @settings(max_examples=20, deadline=None)
    def test_frequent_closed_never_exceeds_either_factor(self, db):
        itemset = db.items[:2]
        values = exact_probabilities(db, itemset, 2)
        assert values["frequent_closed"] <= values["frequent"] + 1e-12
        assert values["frequent_closed"] <= values["closed"] + 1e-12

    def test_paper_frequent_closed_values(self, paper_db):
        assert exact_probabilities(paper_db, "abc", 2)[
            "frequent_closed"
        ] == pytest.approx(0.8754)
        assert exact_probabilities(paper_db, "abcd", 2)[
            "frequent_closed"
        ] == pytest.approx(0.81)


class TestExactMining:
    def test_paper_result_set(self, paper_db):
        results = exact_frequent_closed_itemsets(paper_db, 2, 0.8)
        assert set(results) == {("a", "b", "c"), ("a", "b", "c", "d")}
        assert results[("a", "b", "c")] == pytest.approx(0.8754)

    def test_threshold_is_strict(self, paper_db):
        # Pr_FC({abcd}) = 0.81: a threshold of exactly 0.81 must exclude it.
        results = exact_frequent_closed_itemsets(paper_db, 2, 0.81)
        assert ("a", "b", "c", "d") not in results


class TestSampling:
    def test_sample_world_respects_certainty(self, rng):
        db = UncertainDatabase.from_rows([("T1", "a", 1.0), ("T2", "b", 0.5)])
        for _ in range(50):
            assert 0 in sample_world(db, rng)

    def test_sample_world_frequency(self, rng):
        db = UncertainDatabase.from_rows([("T1", "a", 0.25)])
        hits = sum(1 for _ in range(4000) if sample_world(db, rng) == (0,))
        assert hits / 4000 == pytest.approx(0.25, abs=0.03)
