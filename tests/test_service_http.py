"""Integration tests driving the real HTTP server on an ephemeral port.

Each test boots a :class:`MiningService` inside ``asyncio.run``, talks to
it over a real socket with a minimal asyncio HTTP client (exercising the
server's request framing, not just its handlers), and asserts the wire
contract: status codes, structured ``{"error": {...}}`` bodies,
same-fingerprint coalescing, fingerprint-cache hits, and cooperative
cancellation that never poisons the cache.
"""

import asyncio
import json

import pytest

from repro.core.config import MinerConfig
from repro.core.database import UncertainDatabase
from repro.runtime import run_supervised
from repro.runtime.checkpoint import serialize_result
from repro.service import MiningService

# Fast exact config: completes in well under a second.
FAST_BODY = {
    "database": {
        "transactions": [
            {"tid": "T1", "probability": 0.9, "items": ["a", "b", "c"]},
            {"tid": "T2", "probability": 0.8, "items": ["a", "b"]},
            {"tid": "T3", "probability": 0.7, "items": ["a", "c", "d"]},
            {"tid": "T4", "probability": 0.95, "items": ["b", "c"]},
        ]
    },
    "config": {"min_sup": 1, "pfct": 0.3, "seed": 7},
    "processes": 2,
}

# Forced-sampling config over the same database: a few seconds of mining,
# long enough to observe "running" and to cancel mid-flight.
SLOW_CONFIG = {
    "min_sup": 1,
    "pfct": 0.05,
    "exact_event_limit": 0,
    "epsilon": 0.008,
    "seed": 7,
}


async def request(port, method, path, body=None):
    """Minimal HTTP/1.1 client: returns ``(status, parsed_json)``."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = b"" if body is None else json.dumps(body).encode()
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: localhost\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    writer.write(head.encode() + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    header_blob, _, body_blob = raw.partition(b"\r\n\r\n")
    status = int(header_blob.split(b" ", 2)[1])
    return status, json.loads(body_blob) if body_blob else None


async def poll_until_terminal(port, job_id, timeout=60.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while True:
        status, payload = await request(port, "GET", f"/jobs/{job_id}")
        assert status == 200
        if payload["state"] not in ("queued", "running"):
            return payload
        if asyncio.get_running_loop().time() > deadline:
            pytest.fail(f"job {job_id} still {payload['state']} after {timeout}s")
        await asyncio.sleep(0.1)


def run_service_test(coro_factory, **service_kwargs):
    """Boot a service on an ephemeral port, run the test coroutine, drain."""

    async def main(tmp_path):
        service = MiningService(tmp_path, **service_kwargs)
        port = await service.start("127.0.0.1", 0)
        try:
            await coro_factory(service, port)
        finally:
            await service.shutdown(drain=True)

    return main


class TestHappyPath:
    def test_submit_poll_result(self, tmp_path):
        async def scenario(service, port):
            status, submitted = await request(port, "POST", "/jobs", FAST_BODY)
            assert status == 202
            assert submitted["state"] == "queued"
            assert not submitted["cached"] and not submitted["coalesced"]
            assert len(submitted["fingerprint"]) == 64

            final = await poll_until_terminal(port, submitted["job_id"])
            assert final["state"] == "completed"
            assert final["error"] is None
            assert final["degradation"]["checks_performed"] > 0
            assert final["stats"]["results_emitted"] > 0

            status, result = await request(
                port, "GET", f"/jobs/{submitted['job_id']}/result"
            )
            assert status == 200
            assert result["count"] == len(result["results"]) > 0

            # The wire results equal a direct supervised run on the same DB.
            database = UncertainDatabase.from_rows(
                [
                    (t["tid"], t["items"], t["probability"])
                    for t in FAST_BODY["database"]["transactions"]
                ]
            )
            reference = run_supervised(
                database, MinerConfig(**FAST_BODY["config"]), processes=2
            )
            assert result["results"] == [
                serialize_result(r) for r in reference.results
            ]

        asyncio.run(run_service_test(scenario)(tmp_path))

    def test_cache_hit_on_resubmission(self, tmp_path):
        async def scenario(service, port):
            _, first = await request(port, "POST", "/jobs", FAST_BODY)
            await poll_until_terminal(port, first["job_id"])

            status, second = await request(port, "POST", "/jobs", FAST_BODY)
            assert status == 201
            assert second["cached"] is True
            assert second["job_id"] != first["job_id"]
            assert second["fingerprint"] == first["fingerprint"]

            _, result_one = await request(
                port, "GET", f"/jobs/{first['job_id']}/result"
            )
            _, result_two = await request(
                port, "GET", f"/jobs/{second['job_id']}/result"
            )
            assert result_one["results"] == result_two["results"]
            assert service.cache.stats()["hits"] == 1

        asyncio.run(run_service_test(scenario)(tmp_path))

    def test_same_fingerprint_coalesces_onto_active_job(self, tmp_path):
        async def scenario(service, port):
            body = dict(FAST_BODY, config=SLOW_CONFIG, processes=1)
            _, first = await request(port, "POST", "/jobs", body)
            status, second = await request(port, "POST", "/jobs", body)
            assert status == 200
            assert second["coalesced"] is True
            assert second["job_id"] == first["job_id"]
            # The discarded duplicate left no orphan directory behind.
            assert len(service.store.all()) == 1

            # A *different* config is different work — no coalescing.
            other = dict(body, config=dict(SLOW_CONFIG, min_sup=2))
            status, third = await request(port, "POST", "/jobs", other)
            assert status == 202
            assert third["job_id"] != first["job_id"]

            await poll_until_terminal(port, first["job_id"])
            await poll_until_terminal(port, third["job_id"])

        asyncio.run(run_service_test(scenario, workers=2)(tmp_path))


class TestErrors:
    def test_unknown_job_404(self, tmp_path):
        async def scenario(service, port):
            status, payload = await request(port, "GET", "/jobs/j999999")
            assert status == 404
            assert payload["error"]["code"] == "job-not-found"
            assert payload["error"]["details"]["job_id"] == "j999999"

        asyncio.run(run_service_test(scenario)(tmp_path))

    def test_unknown_route_404_and_bad_method_405(self, tmp_path):
        async def scenario(service, port):
            status, payload = await request(port, "GET", "/nope")
            assert status == 404
            assert payload["error"]["code"] == "not-found"
            status, payload = await request(port, "PUT", "/jobs")
            assert status == 405
            assert payload["error"]["code"] == "method-not-allowed"
            assert "POST" in payload["error"]["details"]["allowed"]

        asyncio.run(run_service_test(scenario)(tmp_path))

    def test_validation_errors_are_structured(self, tmp_path):
        async def scenario(service, port):
            bad = {"database": {"transactions": []}, "config": {"min_sup": 1}}
            status, payload = await request(port, "POST", "/jobs", bad)
            assert status == 400
            assert payload["error"]["code"] == "invalid-database"

            typo = dict(FAST_BODY, config={"min_sup": 1, "pcft": 0.5})
            status, payload = await request(port, "POST", "/jobs", typo)
            assert status == 400
            assert payload["error"]["code"] == "unknown-field"
            assert "pcft" in payload["error"]["details"]["unknown"]

        asyncio.run(run_service_test(scenario)(tmp_path))

    def test_malformed_json_body_400(self, tmp_path):
        async def scenario(service, port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            blob = b"{not json"
            writer.write(
                b"POST /jobs HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: " + str(len(blob)).encode() + b"\r\n\r\n" + blob
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            assert b" 400 " in raw.split(b"\r\n", 1)[0]
            payload = json.loads(raw.partition(b"\r\n\r\n")[2])
            assert payload["error"]["code"] == "invalid-json"

        asyncio.run(run_service_test(scenario)(tmp_path))

    def test_result_before_done_409(self, tmp_path):
        async def scenario(service, port):
            body = dict(FAST_BODY, config=SLOW_CONFIG, processes=1)
            _, submitted = await request(port, "POST", "/jobs", body)
            status, payload = await request(
                port, "GET", f"/jobs/{submitted['job_id']}/result"
            )
            assert status == 409
            assert payload["error"]["code"] == "job-not-finished"
            await poll_until_terminal(port, submitted["job_id"])

        asyncio.run(run_service_test(scenario)(tmp_path))

    def test_shutting_down_503(self, tmp_path):
        async def scenario(service, port):
            service.accepting = False
            status, payload = await request(port, "POST", "/jobs", FAST_BODY)
            assert status == 503
            assert payload["error"]["code"] == "shutting-down"

        asyncio.run(run_service_test(scenario)(tmp_path))


class TestCancellation:
    def test_cancel_running_job_then_resubmit_mines_fresh(self, tmp_path):
        async def scenario(service, port):
            body = dict(FAST_BODY, config=SLOW_CONFIG, processes=1)
            _, submitted = await request(port, "POST", "/jobs", body)
            job_id = submitted["job_id"]

            # Wait for it to actually start, then cancel mid-run.
            while True:
                _, status_payload = await request(port, "GET", f"/jobs/{job_id}")
                if status_payload["state"] == "running":
                    break
                await asyncio.sleep(0.02)
            status, payload = await request(port, "DELETE", f"/jobs/{job_id}")
            assert status == 202
            assert payload["state"] in ("cancelling", "cancelled")

            final = await poll_until_terminal(port, job_id)
            assert final["state"] == "cancelled"

            status, payload = await request(port, "GET", f"/jobs/{job_id}/result")
            assert status == 409
            assert payload["error"]["code"] == "job-cancelled"

            # Satellite contract: the cancelled run never reached the cache,
            # so resubmitting the same work mines fresh and completes.
            status, resubmitted = await request(port, "POST", "/jobs", body)
            assert status == 202
            assert resubmitted["cached"] is False
            final = await poll_until_terminal(port, resubmitted["job_id"])
            assert final["state"] == "completed"
            status, result = await request(
                port, "GET", f"/jobs/{resubmitted['job_id']}/result"
            )
            assert status == 200 and result["count"] > 0

        asyncio.run(run_service_test(scenario)(tmp_path))

    def test_cancel_finished_job_409(self, tmp_path):
        async def scenario(service, port):
            _, submitted = await request(port, "POST", "/jobs", FAST_BODY)
            await poll_until_terminal(port, submitted["job_id"])
            status, payload = await request(
                port, "DELETE", f"/jobs/{submitted['job_id']}"
            )
            assert status == 409
            assert payload["error"]["code"] == "job-already-finished"

        asyncio.run(run_service_test(scenario)(tmp_path))


class TestOpsEndpoints:
    def test_healthz_and_metrics(self, tmp_path):
        async def scenario(service, port):
            status, health = await request(port, "GET", "/healthz")
            assert status == 200
            assert health["status"] == "ok" and health["accepting"] is True

            _, submitted = await request(port, "POST", "/jobs", FAST_BODY)
            await poll_until_terminal(port, submitted["job_id"])

            status, metrics = await request(port, "GET", "/metrics")
            assert status == 200
            assert metrics["jobs"]["completed"] == 1
            assert metrics["mining"]["counters"]["results_emitted"] > 0
            assert metrics["cache"]["entries"] == 1

            status, listing = await request(port, "GET", "/jobs?state=completed")
            assert status == 200
            assert [j["job_id"] for j in listing["jobs"]] == [submitted["job_id"]]

        asyncio.run(run_service_test(scenario)(tmp_path))
