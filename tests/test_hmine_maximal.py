"""Tests for the H-mine miner and the maximal-itemset miner."""

import pytest
from hypothesis import given, settings

from repro.exact.charm import mine_closed_itemsets
from repro.exact.hmine import mine_frequent_itemsets_hmine
from repro.exact.eclat import mine_frequent_itemsets_eclat
from repro.exact.maximal import is_maximal_in, mine_maximal_itemsets
from tests.conftest import brute_force_frequent, exact_transactions

SAMPLE = [
    ("a", "b", "c"),
    ("a", "b"),
    ("a", "c"),
    ("b", "c"),
    ("a", "b", "c", "d"),
]


class TestHMine:
    def test_simple_database(self):
        results = dict(mine_frequent_itemsets_hmine(SAMPLE, 3))
        assert results[("a",)] == 4
        assert results[("a", "b")] == 3
        assert ("a", "b", "c") not in results

    def test_empty_database(self):
        assert mine_frequent_itemsets_hmine([], 1) == []

    def test_rejects_min_sup_zero(self):
        with pytest.raises(ValueError):
            mine_frequent_itemsets_hmine(SAMPLE, 0)

    def test_infrequent_items_filtered_globally(self):
        results = mine_frequent_itemsets_hmine([("a", "x"), ("a",)], 2)
        assert results == [(("a",), 2)]

    @given(transactions=exact_transactions())
    @settings(max_examples=40, deadline=None)
    def test_matches_brute_force(self, transactions):
        for min_sup in (1, 2):
            got = sorted(set(mine_frequent_itemsets_hmine(transactions, min_sup)))
            assert got == sorted(brute_force_frequent(transactions, min_sup))

    @given(transactions=exact_transactions())
    @settings(max_examples=25, deadline=None)
    def test_agrees_with_eclat(self, transactions):
        assert mine_frequent_itemsets_hmine(transactions, 2) == sorted(
            set(mine_frequent_itemsets_eclat(transactions, 2)),
            key=lambda pair: (len(pair[0]), pair[0]),
        )


class TestMaximal:
    def test_simple_database(self):
        maximal = mine_maximal_itemsets(SAMPLE, 2)
        # {abc} (support 2) dominates everything at min_sup=2.
        assert maximal == [(("a", "b", "c"), 2)]

    def test_min_sup_one_returns_longest_transactions(self):
        maximal = dict(mine_maximal_itemsets(SAMPLE, 1))
        assert set(maximal) == {("a", "b", "c", "d")}

    def test_empty(self):
        assert mine_maximal_itemsets([], 1) == []

    def test_is_maximal_predicate(self):
        assert is_maximal_in(SAMPLE, "abc", 2)
        assert not is_maximal_in(SAMPLE, "ab", 2)     # abc still frequent
        assert not is_maximal_in(SAMPLE, "abcd", 2)   # not frequent

    @given(transactions=exact_transactions())
    @settings(max_examples=40, deadline=None)
    def test_matches_predicate(self, transactions):
        for min_sup in (1, 2):
            frequent = brute_force_frequent(transactions, min_sup)
            expected = sorted(
                (itemset, support)
                for itemset, support in frequent
                if is_maximal_in(transactions, itemset, min_sup)
            )
            got = sorted(mine_maximal_itemsets(transactions, min_sup))
            assert got == expected

    @given(transactions=exact_transactions())
    @settings(max_examples=25, deadline=None)
    def test_maximal_subset_of_closed(self, transactions):
        maximal = {x for x, _s in mine_maximal_itemsets(transactions, 2)}
        closed = {x for x, _s in mine_closed_itemsets(transactions, 2)}
        assert maximal <= closed

    @given(transactions=exact_transactions())
    @settings(max_examples=25, deadline=None)
    def test_every_frequent_itemset_has_maximal_superset(self, transactions):
        frequent = brute_force_frequent(transactions, 2)
        maximal = [set(x) for x, _s in mine_maximal_itemsets(transactions, 2)]
        for itemset, _support in frequent:
            assert any(set(itemset) <= m for m in maximal)
