"""Tests for the sliding-window uncertain database."""

import random

import pytest

from repro.core.database import UncertainDatabase
from repro.streaming import WindowedUncertainDatabase
from tests.strategies import make_transaction as txn
from tests.strategies import random_uncertain_transactions


class TestAppendEvict:
    def test_append_fills_then_evicts_fifo(self):
        window = WindowedUncertainDatabase(capacity=2)
        assert window.append(txn("T1", "ab", 0.5)) is None
        assert window.append(txn("T2", "bc", 0.9)) is None
        evicted = window.append(txn("T3", "a", 0.4))
        assert evicted is not None and evicted.tid == "T1"
        assert [row.tid for row in window] == ["T2", "T3"]
        assert len(window) == 2
        assert window.total_appended == 3
        assert window.total_evicted == 1

    def test_landmark_mode_never_evicts(self):
        window = WindowedUncertainDatabase()
        for index in range(10):
            assert window.append(txn(f"T{index}", "a", 0.5)) is None
        assert len(window) == 10

    def test_generation_bumps_once_per_slide(self):
        window = WindowedUncertainDatabase(capacity=1)
        assert window.generation == 0
        window.append(txn("T1", "a", 0.5))
        assert window.generation == 1
        window.append(txn("T2", "b", 0.5))  # paired append + evict
        assert window.generation == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowedUncertainDatabase(capacity=0)
        window = WindowedUncertainDatabase(capacity=2)
        with pytest.raises(IndexError):
            window[0]


class TestMaintainedIndex:
    def test_tidsets_and_expected_supports_track_eviction(self):
        window = WindowedUncertainDatabase(capacity=2)
        window.append(txn("T1", "ab", 0.5))
        window.append(txn("T2", "a", 0.9))
        assert window.tidset_of_item("a") == (0, 1)
        assert window.expected_support_of_item("a") == pytest.approx(1.4)
        window.append(txn("T3", "b", 0.4))  # T1 leaves
        assert window.tidset_of_item("a") == (0,)
        assert window.item_probabilities("a") == (0.9,)
        assert window.expected_support_of_item("a") == pytest.approx(0.9)
        assert window.tidset_of_item("b") == (1,)
        assert window.count_of_item("a") == 1
        # "b" from T1 is gone entirely once T1's other copy leaves too.
        window.append(txn("T4", "c", 0.8))
        window.append(txn("T5", "c", 0.8))
        assert window.count_of_item("b") == 0
        assert window.tidset_of_item("b") == ()
        assert window.expected_support_of_item("b") == 0.0
        assert window.items == ("c",)

    def test_index_matches_plain_database_over_random_slides(self):
        rng = random.Random(99)
        window = WindowedUncertainDatabase(capacity=7)
        for transaction in random_uncertain_transactions(rng, 60, max_size=3):
            window.append(transaction)
            reference = UncertainDatabase(list(window))
            assert window.items == reference.items
            for item in reference.items:
                assert window.tidset_of_item(item) == reference.tidset_of_item(item)
                assert window.item_probabilities(item) == reference.tidset_probabilities(
                    reference.tidset_of_item(item)
                )
                assert window.expected_support_of_item(item) == pytest.approx(
                    reference.expected_support((item,))
                )

    def test_refresh_expected_support_discards_drift(self):
        window = WindowedUncertainDatabase(capacity=3)
        for index in range(10):
            window.append(txn(f"T{index}", "a", 0.1 + 0.07 * (index % 5)))
        exact = sum(window.item_probabilities("a"))
        assert window.refresh_expected_support("a") == pytest.approx(exact, abs=0)
        assert window.refresh_expected_support("missing") == 0.0


class TestSnapshot:
    def test_snapshot_equals_plain_database(self):
        window = WindowedUncertainDatabase(capacity=3)
        for index in range(5):
            window.append(txn(f"T{index}", "ab"[: 1 + index % 2], 0.5))
        snapshot = window.snapshot()
        reference = UncertainDatabase(list(window))
        assert snapshot.transactions == reference.transactions
        assert snapshot.probabilities == reference.probabilities
        assert snapshot.items == reference.items
        for item in reference.items:
            assert snapshot.tidset_of_item(item) == reference.tidset_of_item(item)

    def test_snapshot_cached_per_generation(self):
        window = WindowedUncertainDatabase(capacity=3)
        window.append(txn("T1", "a", 0.5))
        first = window.snapshot()
        assert window.snapshot() is first
        window.append(txn("T2", "b", 0.5))
        assert window.snapshot() is not first
