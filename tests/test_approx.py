"""Tests for the ApproxFCP FPRAS (Karp-Luby coverage estimator)."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.approx import (
    approx_frequent_closed_probability,
    approx_union_probability,
    sample_count,
)
from repro.core.database import UncertainDatabase
from repro.core.events import ExtensionEventSystem
from repro.core.possible_worlds import exact_probabilities
from tests.conftest import uncertain_databases


class TestSampleCount:
    def test_formula(self):
        # N = ceil(4 m ln(2/delta) / eps^2)
        assert sample_count(10, 0.1, 0.1) == math.ceil(
            4 * 10 * math.log(20) / 0.01
        )

    def test_zero_events(self):
        assert sample_count(0, 0.1, 0.1) == 0

    def test_scales_linearly_in_events(self):
        assert sample_count(20, 0.1, 0.1) == pytest.approx(
            2 * sample_count(10, 0.1, 0.1), abs=1
        )

    def test_scales_inverse_square_in_epsilon(self):
        coarse = sample_count(5, 0.2, 0.1)
        fine = sample_count(5, 0.1, 0.1)
        assert fine == pytest.approx(4 * coarse, rel=0.01)


class TestUnionEstimator:
    def test_single_event_is_exact(self, paper_db):
        """With one event every sample is a first-cover: estimate == Z."""
        events = ExtensionEventSystem(paper_db, "abc", min_sup=2)
        estimate, samples = approx_union_probability(
            events, 0.3, 0.3, random.Random(0)
        )
        assert estimate == pytest.approx(0.0972)
        assert samples > 0

    def test_no_events_short_circuits(self, paper_db):
        events = ExtensionEventSystem(paper_db, "abcd", min_sup=2)
        estimate, samples = approx_union_probability(
            events, 0.1, 0.1, random.Random(0)
        )
        assert estimate == 0.0
        assert samples == 0

    def test_deterministic_given_seed(self, paper_db):
        events = ExtensionEventSystem(paper_db, "a", min_sup=2)
        first = approx_union_probability(events, 0.2, 0.2, random.Random(7))
        second = approx_union_probability(events, 0.2, 0.2, random.Random(7))
        assert first == second

    def test_max_samples_cap(self, paper_db):
        events = ExtensionEventSystem(paper_db, "a", min_sup=2)
        _estimate, samples = approx_union_probability(
            events, 0.01, 0.01, random.Random(0), max_samples=50
        )
        assert samples == 50

    @given(
        uncertain_databases(max_transactions=6, max_items=5, allow_certain=False),
        st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=20, deadline=None)
    def test_estimate_close_to_exact_union(self, db, min_sup):
        itemset = (db.items[0],)
        events = ExtensionEventSystem(db, itemset, min_sup)
        if not events.events:
            return
        exact = events.union_probability_exact()
        estimate, _samples = approx_union_probability(
            events, 0.1, 0.05, random.Random(99)
        )
        # The KL guarantee is relative; allow the matching absolute slack.
        assert abs(estimate - exact) <= 0.1 * max(exact, 0.05) + 0.05


class TestApproxFCP:
    def test_paper_example(self, paper_db):
        result = approx_frequent_closed_probability(
            paper_db, "abc", 2, epsilon=0.05, delta=0.05, rng=random.Random(5)
        )
        assert result.frequent_probability == pytest.approx(0.9726)
        assert result.estimate == pytest.approx(0.8754, abs=0.02)
        assert result.samples > 0

    def test_clamped_to_valid_range(self, paper_db):
        result = approx_frequent_closed_probability(
            paper_db, "a", 2, epsilon=0.2, delta=0.2, rng=random.Random(1)
        )
        assert 0.0 <= result.estimate <= result.frequent_probability

    def test_infrequent_itemset_is_zero_without_sampling(self):
        db = UncertainDatabase.from_rows([("T1", "a", 0.5)])
        result = approx_frequent_closed_probability(
            db, "a", 2, epsilon=0.1, delta=0.1, rng=random.Random(0)
        )
        assert result.estimate == 0.0
        assert result.samples == 0

    @given(uncertain_databases(max_transactions=6, max_items=4, allow_certain=False))
    @settings(max_examples=15, deadline=None)
    def test_tracks_oracle(self, db):
        itemset = (db.items[0],)
        truth = exact_probabilities(db, itemset, 2)["frequent_closed"]
        result = approx_frequent_closed_probability(
            db, itemset, 2, epsilon=0.05, delta=0.05, rng=random.Random(17)
        )
        assert result.estimate == pytest.approx(truth, abs=0.06)


class TestPaperRatioEstimator:
    """The prose U*Z/V estimator of Section IV.B.4, kept for comparison.

    These tests document *why* the library uses the standard Karp-Luby
    estimator: the ratio form is consistent only when world probabilities
    are uniform (as in the hardness construction), and measurably biased
    otherwise.
    """

    def _nonuniform_events(self):
        from repro.core.database import UncertainDatabase
        from repro.core.events import ExtensionEventSystem

        db = UncertainDatabase.from_rows(
            [
                ("T1", "abc", 0.95),
                ("T2", "ab", 0.2),
                ("T3", "ac", 0.9),
                ("T4", "ad", 0.15),
                ("T5", "abd", 0.7),
                ("T6", "a", 0.5),
            ]
        )
        return ExtensionEventSystem(db, "a", 1)

    def test_biased_on_nonuniform_worlds(self):
        from repro.core.approx import paper_ratio_union_estimator

        events = self._nonuniform_events()
        exact = events.union_probability_exact()
        kl_estimate, _n = approx_union_probability(
            events, 0.02, 0.02, random.Random(0)
        )
        ratio_estimate, _n = paper_ratio_union_estimator(
            events, 0.02, 0.02, random.Random(0)
        )
        # At ~138k samples the KL noise floor is ~1e-3; the ratio estimator
        # sits several noise floors away from the truth.
        assert abs(kl_estimate - exact) < 0.004
        assert abs(ratio_estimate - exact) > 0.005

    def test_consistent_on_uniform_worlds(self):
        """On probability-1/2 worlds (the Theorem 3.1 setting) both
        estimators converge to the exact union."""
        from repro.core.database import UncertainDatabase
        from repro.core.events import ExtensionEventSystem
        from repro.core.approx import paper_ratio_union_estimator

        db = UncertainDatabase.from_rows(
            [("T1", "ab", 0.5), ("T2", "ac", 0.5), ("T3", "abc", 0.5),
             ("T4", "a", 0.5)]
        )
        events = ExtensionEventSystem(db, "a", 1)
        exact = events.union_probability_exact()
        ratio_estimate, _n = paper_ratio_union_estimator(
            events, 0.03, 0.03, random.Random(1)
        )
        assert ratio_estimate == pytest.approx(exact, abs=0.01)

    def test_zero_union_short_circuits(self, paper_db):
        from repro.core.approx import paper_ratio_union_estimator
        from repro.core.events import ExtensionEventSystem

        events = ExtensionEventSystem(paper_db, "abcd", min_sup=2)
        estimate, samples = paper_ratio_union_estimator(
            events, 0.1, 0.1, random.Random(0)
        )
        assert estimate == 0.0
        assert samples == 0
