"""Every :class:`MinerConfig` rejection path fires eagerly at construction.

Invalid configurations must never reach the miner: a bad threshold that only
surfaces as a crash (or silently wrong results) hours into a run is exactly
the failure mode the robustness layer exists to prevent.
"""

import pytest

from repro.core.config import MinerConfig
from repro.runtime import SupervisorConfig
from repro.runtime.faults import BranchFault


def valid(**overrides):
    return MinerConfig(min_sup=2).variant(**overrides)


class TestMinerConfigRejections:
    @pytest.mark.parametrize("min_sup", [0, -1, -100])
    def test_min_sup_below_one(self, min_sup):
        with pytest.raises(ValueError, match="min_sup"):
            MinerConfig(min_sup=min_sup)

    @pytest.mark.parametrize("pfct", [-0.1, 1.0, 1.5])
    def test_pfct_outside_half_open_unit_interval(self, pfct):
        with pytest.raises(ValueError, match="pfct"):
            valid(pfct=pfct)

    @pytest.mark.parametrize("epsilon", [0.0, 1.0, -0.2])
    def test_epsilon_outside_open_unit_interval(self, epsilon):
        with pytest.raises(ValueError, match="epsilon"):
            valid(epsilon=epsilon)

    @pytest.mark.parametrize("delta", [0.0, 1.0, 2.0])
    def test_delta_outside_open_unit_interval(self, delta):
        with pytest.raises(ValueError, match="delta"):
            valid(delta=delta)

    def test_negative_exact_event_limit(self):
        with pytest.raises(ValueError, match="exact_event_limit"):
            valid(exact_event_limit=-1)

    def test_unknown_lower_bound(self):
        with pytest.raises(ValueError, match="lower bound"):
            valid(lower_bound="bonferroni")

    def test_unknown_upper_bound(self):
        with pytest.raises(ValueError, match="upper bound"):
            valid(upper_bound="markov")

    def test_unknown_tidset_backend(self):
        with pytest.raises(ValueError, match="tidset backend"):
            valid(tidset_backend="roaring")

    @pytest.mark.parametrize("size", [0, -5])
    def test_max_itemset_size_below_one(self, size):
        with pytest.raises(ValueError, match="max_itemset_size"):
            valid(max_itemset_size=size)

    @pytest.mark.parametrize("size", [0, -1])
    def test_dp_cache_size_below_one(self, size):
        with pytest.raises(ValueError, match="dp_cache_size"):
            valid(dp_cache_size=size)

    @pytest.mark.parametrize("budget", [-1, -100])
    def test_negative_exact_check_budget(self, budget):
        with pytest.raises(ValueError, match="exact_check_budget"):
            valid(exact_check_budget=budget)

    @pytest.mark.parametrize("deadline", [0.0, -1.0])
    def test_non_positive_check_deadline(self, deadline):
        with pytest.raises(ValueError, match="check_deadline_seconds"):
            valid(check_deadline_seconds=deadline)

    @pytest.mark.parametrize("ratio", [0.0, 1.0001, -0.5])
    def test_relative_min_sup_ratio_outside_unit_interval(self, ratio):
        with pytest.raises(ValueError, match="relative min_sup"):
            MinerConfig.with_relative_min_sup(100, ratio)

    def test_variant_revalidates(self):
        """``variant`` reconstructs the frozen dataclass, so overrides go
        through ``__post_init__`` again."""
        with pytest.raises(ValueError, match="pfct"):
            valid(pfct=2.0)

    def test_boundary_values_accepted(self):
        config = valid(
            pfct=0.0,
            exact_event_limit=0,
            exact_check_budget=0,
            check_deadline_seconds=0.001,
            dp_cache_size=1,
            max_itemset_size=1,
        )
        assert config.exact_check_budget == 0
        assert config.check_deadline_seconds == 0.001


class TestSupervisorConfigRejections:
    @pytest.mark.parametrize("timeout", [0.0, -1.0])
    def test_non_positive_branch_timeout(self, timeout):
        with pytest.raises(ValueError, match="branch_timeout_seconds"):
            SupervisorConfig(branch_timeout_seconds=timeout)

    def test_negative_max_retries(self):
        with pytest.raises(ValueError, match="max_retries"):
            SupervisorConfig(max_retries=-1)

    def test_negative_backoff_base(self):
        with pytest.raises(ValueError, match="backoff_base_seconds"):
            SupervisorConfig(backoff_base_seconds=-0.1)

    def test_backoff_multiplier_below_one(self):
        with pytest.raises(ValueError, match="backoff_multiplier"):
            SupervisorConfig(backoff_multiplier=0.5)

    def test_negative_backoff_cap(self):
        with pytest.raises(ValueError, match="backoff_cap_seconds"):
            SupervisorConfig(backoff_cap_seconds=-1.0)

    def test_non_positive_poll_interval(self):
        with pytest.raises(ValueError, match="poll_interval_seconds"):
            SupervisorConfig(poll_interval_seconds=0.0)

    def test_backoff_schedule_is_capped_exponential(self):
        supervisor = SupervisorConfig(
            backoff_base_seconds=0.1, backoff_multiplier=2.0, backoff_cap_seconds=0.35
        )
        assert supervisor.backoff_seconds(0) == 0.0
        assert supervisor.backoff_seconds(1) == pytest.approx(0.1)
        assert supervisor.backoff_seconds(2) == pytest.approx(0.2)
        assert supervisor.backoff_seconds(3) == pytest.approx(0.35)  # capped


class TestBranchFaultRejections:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="fault kind"):
            BranchFault("segfault")

    def test_attempts_below_one(self):
        with pytest.raises(ValueError, match="attempts"):
            BranchFault("raise", attempts=0)

    def test_non_positive_hang_seconds(self):
        with pytest.raises(ValueError, match="hang_seconds"):
            BranchFault("hang", hang_seconds=0.0)
