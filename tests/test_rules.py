"""Tests for probabilistic association rules."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.database import UncertainDatabase
from repro.core.possible_worlds import enumerate_worlds, world_support
from repro.core.rules import (
    expected_confidence,
    generate_probabilistic_rules,
    rule_confidence_probability,
)
from tests.conftest import uncertain_databases


def oracle_rule_probability(db, antecedent, consequent, min_sup, min_conf):
    """Pr[sup(X∪Y) >= min_sup and conf >= min_conf] by world enumeration."""
    union = tuple(antecedent) + tuple(consequent)
    total = 0.0
    for world, probability in enumerate_worlds(db):
        support_union = world_support(db, world, union)
        support_antecedent = world_support(db, world, antecedent)
        if support_union < min_sup:
            continue
        if support_union >= min_conf * support_antecedent:
            total += probability
    return total


class TestRuleConfidenceProbability:
    def test_paper_example_hand_computed(self, paper_db):
        # Rule {a} -> {d}: A = {T1, T4} (0.9 each), B = {T2, T3}.
        # With min_conf = 1.0, every B transaction must be absent.
        value = rule_confidence_probability(paper_db, "a", "d", 1, 1.0)
        expected = (1 - (1 - 0.9) * (1 - 0.9)) * (1 - 0.6) * (1 - 0.7)
        assert value == pytest.approx(expected)

    def test_certain_rule(self, paper_db):
        # {d} -> {a}: every transaction containing d contains a, so the rule
        # holds whenever d appears at all.
        value = rule_confidence_probability(paper_db, "d", "a", 1, 1.0)
        assert value == pytest.approx(1 - (1 - 0.9) * (1 - 0.9))

    def test_min_sup_gate(self, paper_db):
        # sup({a,d}) >= 3 is impossible (count 2).
        assert rule_confidence_probability(paper_db, "a", "d", 3, 0.5) == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"antecedent": (), "consequent": "a"},
            {"antecedent": "a", "consequent": ()},
            {"antecedent": "ab", "consequent": "b"},
            {"antecedent": "a", "consequent": "b", "min_sup": 0},
            {"antecedent": "a", "consequent": "b", "min_conf": 0.0},
            {"antecedent": "a", "consequent": "b", "min_conf": 1.5},
        ],
    )
    def test_validation(self, paper_db, kwargs):
        kwargs.setdefault("min_sup", 1)
        kwargs.setdefault("min_conf", 0.5)
        with pytest.raises(ValueError):
            rule_confidence_probability(
                paper_db, kwargs["antecedent"], kwargs["consequent"],
                kwargs["min_sup"], kwargs["min_conf"],
            )

    @given(
        uncertain_databases(max_transactions=6, max_items=4),
        st.integers(min_value=1, max_value=3),
        st.sampled_from([0.3, 0.5, 0.8, 1.0]),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_world_oracle(self, db, min_sup, min_conf):
        items = db.items
        if len(items) < 2:
            return
        antecedent, consequent = (items[0],), (items[1],)
        value = rule_confidence_probability(
            db, antecedent, consequent, min_sup, min_conf
        )
        oracle = oracle_rule_probability(db, antecedent, consequent, min_sup, min_conf)
        assert value == pytest.approx(oracle, abs=1e-9)

    @given(uncertain_databases(max_transactions=6, max_items=4))
    @settings(max_examples=25, deadline=None)
    def test_monotone_in_min_conf(self, db):
        items = db.items
        if len(items) < 2:
            return
        values = [
            rule_confidence_probability(db, (items[0],), (items[1],), 1, conf)
            for conf in (0.2, 0.5, 0.8, 1.0)
        ]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))


class TestExpectedConfidence:
    def test_paper_example(self, paper_db):
        # E[sup(ad)] = 1.8, E[sup(a)] = 3.1.
        assert expected_confidence(paper_db, "a", "d") == pytest.approx(1.8 / 3.1)

    def test_certain_implication(self, paper_db):
        assert expected_confidence(paper_db, "d", "a") == pytest.approx(1.0)

    def test_empty_antecedent_support(self):
        db = UncertainDatabase.from_rows([("T1", "a", 0.5)])
        assert expected_confidence(db, "b", "c") == 0.0


class TestRuleGeneration:
    def test_paper_example_rules(self, paper_db):
        rules = generate_probabilistic_rules(
            paper_db, min_sup=2, min_conf=0.8, rule_threshold=0.7
        )
        assert rules
        rendered = {f"{r.antecedent}->{r.consequent}" for r in rules}
        # The certain implications within {a,b,c} must surface.
        assert "('a',)->('b', 'c')" in rendered
        for rule in rules:
            assert rule.confidence_probability > 0.7
            assert not set(rule.antecedent) & set(rule.consequent)

    def test_rules_verified_against_direct_computation(self, paper_db):
        rules = generate_probabilistic_rules(
            paper_db, min_sup=2, min_conf=0.9, rule_threshold=0.5
        )
        for rule in rules:
            direct = rule_confidence_probability(
                paper_db, rule.antecedent, rule.consequent, 2, 0.9
            )
            assert rule.confidence_probability == pytest.approx(direct)

    def test_sorted_by_probability(self, paper_db):
        rules = generate_probabilistic_rules(
            paper_db, min_sup=2, min_conf=0.8, rule_threshold=0.1
        )
        probabilities = [rule.confidence_probability for rule in rules]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_threshold_validation(self, paper_db):
        with pytest.raises(ValueError):
            generate_probabilistic_rules(paper_db, 2, 0.8, rule_threshold=1.0)

    def test_string_rendering(self, paper_db):
        rules = generate_probabilistic_rules(
            paper_db, min_sup=2, min_conf=0.8, rule_threshold=0.7
        )
        assert "->" in str(rules[0])
        assert "Pr[conf]" in str(rules[0])
