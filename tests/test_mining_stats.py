"""Metamorphic invariants of the instrumented mining runtime.

The :class:`repro.core.stats.MiningStats` counters must satisfy exact
accounting identities on *every* run, for every pruning variant:

* node accounting — ``nodes_visited == pruned_by_superset +
  subset_absorbed + checks_performed`` (DFS); ``nodes_visited ==
  checks_performed`` (BFS, where the structural prunings cannot fire);
* check accounting — every check ends in exactly one outcome, so
  ``checks_performed == check_outcomes``;
* DP-cache accounting — ``dp_cache_hits + dp_cache_misses ==
  dp_requests``, with at least one DP actually run (demand miss or batch
  seeding) whenever work was done;
* serial/parallel equivalence — on exact-path configurations the parallel
  driver returns the identical result set and its merged counters equal
  the serial run's on every field that does not depend on cache sharing.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bfs import MPFCIBreadthFirstMiner
from repro.core.config import MinerConfig
from repro.core.database import (
    UncertainDatabase,
    paper_table2_database,
    paper_table4_database,
)
from repro.core.miner import MPFCIMiner
from repro.core.parallel import mine_pfci_parallel
from repro.core.stats import MinerStatistics, MiningStats
from tests.conftest import uncertain_databases

# Table VII pruning variants — the invariants must hold under all of them.
VARIANT_OVERRIDES = {
    "MPFCI": {},
    "MPFCI-NoCH": {"use_chernoff_pruning": False},
    "MPFCI-NoSuper": {"use_superset_pruning": False},
    "MPFCI-NoSub": {"use_subset_pruning": False},
    "MPFCI-NoBound": {"use_probability_bounds": False},
}

# Counter fields whose values depend on how the DP cache is shared between
# branches; everything else must merge to the serial run's exact values.
CACHE_DEPENDENT_FIELDS = {
    "dp_invocations",
    "dp_batch_invocations",
    "dp_cache_hits",
    "dp_cache_misses",
    "dp_cache_evictions",
    "dp_tail_table_hits",
    "dp_tail_table_misses",
    "dp_tail_table_evictions",
    # Engine work depends on what the shared cache already held (a warm
    # cache skips gathers/ANDs a cold per-worker cache performs).
    "tidset_intersections",
    "tidset_words_anded",
    "tidset_popcounts",
    "tidset_gathers",
}
TIMING_FIELDS = {
    "elapsed_seconds",
    "candidate_phase_seconds",
    "search_phase_seconds",
    "check_phase_seconds",
}


def assert_invariants(stats: MiningStats, breadth_first: bool = False) -> None:
    if breadth_first:
        assert stats.nodes_visited == stats.checks_performed
    else:
        assert stats.nodes_visited == (
            stats.pruned_by_superset
            + stats.subset_absorbed
            + stats.checks_performed
        )
    assert stats.checks_performed == stats.check_outcomes
    assert stats.dp_requests == stats.dp_cache_hits + stats.dp_cache_misses
    assert stats.fcp_evaluations == (
        stats.fcp_exact_evaluations + stats.fcp_sampled_evaluations
    )
    assert stats.decided_by_tight_bounds <= stats.fcp_exact_evaluations
    assert stats.dp_batch_invocations <= stats.dp_invocations
    if stats.nodes_visited:
        assert stats.dp_invocations > 0  # work implies at least one DP run


class TestAccountingInvariants:
    @pytest.mark.parametrize("overrides", VARIANT_OVERRIDES.values(),
                             ids=VARIANT_OVERRIDES.keys())
    @pytest.mark.parametrize("database_factory,min_sup", [
        (paper_table2_database, 2),
        (paper_table4_database, 2),
        (paper_table4_database, 4),
    ])
    def test_dfs_on_paper_databases(self, database_factory, min_sup, overrides):
        database = database_factory()
        config = MinerConfig(min_sup=min_sup, pfct=0.5, **overrides)
        miner = MPFCIMiner(database, config)
        miner.mine()
        assert_invariants(miner.stats)

    @pytest.mark.parametrize("database_factory,min_sup", [
        (paper_table2_database, 2),
        (paper_table4_database, 3),
    ])
    def test_bfs_on_paper_databases(self, database_factory, min_sup):
        database = database_factory()
        config = MinerConfig(min_sup=min_sup, pfct=0.5)
        miner = MPFCIBreadthFirstMiner(database, config)
        miner.mine()
        assert_invariants(miner.stats, breadth_first=True)

    @given(
        uncertain_databases(min_transactions=2, max_transactions=7),
        st.integers(min_value=1, max_value=3),
        st.sampled_from(sorted(VARIANT_OVERRIDES)),
    )
    @settings(max_examples=40, deadline=None)
    def test_dfs_on_random_databases(self, database, min_sup, variant):
        config = MinerConfig(
            min_sup=min_sup, pfct=0.3, exact_event_limit=64,
            **VARIANT_OVERRIDES[variant],
        )
        miner = MPFCIMiner(database, config)
        results = miner.mine()
        assert_invariants(miner.stats)
        assert miner.stats.results_emitted == len(results)

    def test_mine_is_repeatable_and_resets_stats(self):
        miner = MPFCIMiner(paper_table2_database(), MinerConfig(min_sup=2))
        first_results = miner.mine()
        first = miner.stats.as_dict()
        second_results = miner.mine()
        second = miner.stats.as_dict()
        assert first_results == second_results
        for name, value in first.items():
            if name not in TIMING_FIELDS:
                assert second[name] == value, name

    def test_phase_timings_partition_elapsed(self):
        miner = MPFCIMiner(paper_table2_database(), MinerConfig(min_sup=2))
        miner.mine()
        stats = miner.stats
        assert stats.candidate_phase_seconds >= 0.0
        assert stats.search_phase_seconds >= 0.0
        assert stats.check_phase_seconds >= 0.0
        assert (
            stats.candidate_phase_seconds
            + stats.search_phase_seconds
            + stats.check_phase_seconds
        ) == pytest.approx(stats.elapsed_seconds, abs=1e-6)


class TestSerialParallelEquivalence:
    @staticmethod
    def _random_database(seed: int) -> UncertainDatabase:
        rng = random.Random(seed)
        rows = []
        for index in range(12):
            size = rng.randint(1, 5)
            rows.append(
                (f"T{index}", tuple(rng.sample("abcde", size)),
                 round(rng.uniform(0.1, 0.99), 3))
            )
        return UncertainDatabase.from_rows(rows)

    @pytest.mark.parametrize("seed", range(3))
    def test_identical_results_and_merged_counters(self, seed):
        database = self._random_database(seed)
        # Exact-path configuration: no Monte-Carlo, so serial and parallel
        # must agree bit-for-bit.
        config = MinerConfig(min_sup=2, pfct=0.4, exact_event_limit=64)

        serial_miner = MPFCIMiner(database, config)
        serial_results = serial_miner.mine()
        parallel_stats = MiningStats()
        parallel_results = mine_pfci_parallel(
            database, config, processes=2, stats=parallel_stats
        )

        assert [(r.itemset, r.probability) for r in serial_results] == [
            (r.itemset, r.probability) for r in parallel_results
        ]
        assert_invariants(parallel_stats)

        serial = serial_miner.stats.as_dict()
        merged = parallel_stats.as_dict()
        for name, value in serial.items():
            if name in TIMING_FIELDS or name in CACHE_DEPENDENT_FIELDS:
                continue
            assert merged[name] == value, name
        # Total DP traffic is cache-layout independent: each worker answers
        # hits + misses == requests locally, and requests per node are fixed.
        assert parallel_stats.dp_requests == serial_miner.stats.dp_requests
        assert (
            parallel_stats.dp_tail_table_hits + parallel_stats.dp_tail_table_misses
            == serial_miner.stats.dp_tail_table_hits
            + serial_miner.stats.dp_tail_table_misses
        )

    def test_parallel_stats_out_param_accumulates(self, paper_db):
        config = MinerConfig(min_sup=2, pfct=0.8)
        stats = MiningStats()
        results = mine_pfci_parallel(paper_db, config, processes=2, stats=stats)
        assert stats.results_emitted == len(results) == 2
        assert stats.elapsed_seconds > 0.0
        assert_invariants(stats)


class TestStatsObject:
    def test_merge_adds_every_field(self):
        first = MiningStats(nodes_visited=3, dp_cache_hits=5, elapsed_seconds=1.0)
        second = MiningStats(nodes_visited=4, dp_cache_hits=7, elapsed_seconds=0.5)
        first.merge(second)
        assert first.nodes_visited == 7
        assert first.dp_cache_hits == 12
        assert first.elapsed_seconds == pytest.approx(1.5)

    def test_report_structure_is_consistent(self):
        miner = MPFCIMiner(paper_table2_database(), MinerConfig(min_sup=2))
        miner.mine()
        report = miner.stats.report()
        assert set(report) == {"counters", "derived", "runtime", "phases"}
        assert report["runtime"]["branch_retries"] == 0
        assert report["runtime"]["degraded_checks"] == 0
        assert report["counters"] == miner.stats.as_dict()
        assert report["derived"]["dp_requests"] == miner.stats.dp_requests
        assert report["derived"]["check_outcomes"] == miner.stats.checks_performed
        assert report["derived"]["dp_cache_hit_rate"] == pytest.approx(
            miner.stats.dp_cache_hit_rate, abs=1e-6
        )
        assert report["phases"]["total_seconds"] == miner.stats.elapsed_seconds

    def test_summary_mentions_core_counters(self):
        stats = MiningStats(nodes_visited=9, dp_cache_hits=3, dp_cache_misses=1)
        summary = stats.summary()
        assert "nodes=9" in summary
        assert "hit_rate=0.75" in summary

    def test_seed_alias_is_the_same_class(self):
        assert MinerStatistics is MiningStats

    def test_hit_rate_zero_when_idle(self):
        assert MiningStats().dp_cache_hit_rate == 0.0
        assert MiningStats().dp_requests == 0
