"""Adversarial constructions and failure-injection tests.

These target the places where the miner's pruning logic could plausibly go
wrong: certain (p=1.0) transactions that annihilate extension events, long
chains of items with identical tidsets (deep subset-pruning cascades),
item orders engineered so superset pruning must fire mid-path, and
degenerate thresholds.
Every case is checked against the possible-world oracle.
"""

import pytest

from repro.core.bfs import MPFCIBreadthFirstMiner
from repro.core.config import MinerConfig
from repro.core.database import UncertainDatabase
from repro.core.miner import MPFCIMiner, mine_pfci
from repro.core.possible_worlds import exact_frequent_closed_itemsets
from repro.core.closedness import frequent_closed_probability_exact


def assert_matches_oracle(db, min_sup, pfct, **config_kwargs):
    truth = exact_frequent_closed_itemsets(db, min_sup, pfct)
    config = MinerConfig(
        min_sup=min_sup, pfct=pfct, exact_event_limit=32, **config_kwargs
    )
    results = MPFCIMiner(db, config).mine()
    assert {r.itemset for r in results} == set(truth)
    return results, truth


class TestCertainTransactions:
    def test_all_certain_reduces_to_exact_mining(self):
        """With every probability 1.0 there is one world: results must be
        exactly the deterministic frequent closed itemsets, each with
        probability 1."""
        db = UncertainDatabase.from_rows(
            [("T1", "ab", 1.0), ("T2", "ab", 1.0), ("T3", "abc", 1.0)]
        )
        results, truth = assert_matches_oracle(db, 2, 0.5)
        for result in results:
            assert result.probability == pytest.approx(1.0)
        assert {r.itemset for r in results} == {("a", "b")}

    def test_certain_transaction_annihilates_events(self):
        """A certain transaction containing X but not e makes C_e impossible
        (its absent factor is 0): Pr_FC(X) = Pr_F(X)."""
        db = UncertainDatabase.from_rows(
            [("T1", "a", 1.0), ("T2", "ab", 0.5), ("T3", "ab", 0.5)]
        )
        value = frequent_closed_probability_exact(db, "a", 1)
        # {a} is closed unless... T1 is always present and contains exactly
        # {a}; the closure of {a} always equals {a}. Pr_C({a}) = 1.
        assert value == pytest.approx(1.0)
        assert_matches_oracle(db, 1, 0.5)

    def test_mixed_certain_and_uncertain(self):
        db = UncertainDatabase.from_rows(
            [
                ("T1", "abc", 1.0),
                ("T2", "ab", 0.3),
                ("T3", "bc", 1.0),
                ("T4", "c", 0.9),
            ]
        )
        for min_sup in (1, 2, 3):
            assert_matches_oracle(db, min_sup, 0.2)


class TestIdenticalTidsetChains:
    def test_deep_subset_pruning_cascade(self):
        """Five items that always co-occur: only the 5-itemset can be closed."""
        db = UncertainDatabase.from_rows(
            [("T1", "abcde", 0.9), ("T2", "abcde", 0.8), ("T3", "abcde", 0.7)]
        )
        results, _truth = assert_matches_oracle(db, 2, 0.5)
        assert {r.itemset for r in results} == {("a", "b", "c", "d", "e")}

    def test_pruning_counters_on_cascade(self):
        db = UncertainDatabase.from_rows(
            [("T1", "abcde", 0.9), ("T2", "abcde", 0.8), ("T3", "abcde", 0.7)]
        )
        miner = MPFCIMiner(db, MinerConfig(min_sup=2, pfct=0.5))
        miner.mine()
        # The a-branch absorbs b..e one at a time; the b,c,d,e branches die
        # to superset pruning immediately.
        assert miner.stats.pruned_by_superset == 4
        assert miner.stats.pruned_by_subset > 0

    def test_two_identical_groups(self):
        """{a,b} and {c,d} each always co-occur but independently."""
        db = UncertainDatabase.from_rows(
            [("T1", "ab", 0.9), ("T2", "abcd", 0.8), ("T3", "cd", 0.7),
             ("T4", "abcd", 0.6)]
        )
        assert_matches_oracle(db, 1, 0.3)
        assert_matches_oracle(db, 2, 0.3)


class TestThresholdExtremes:
    def test_min_sup_equals_database_size(self):
        db = UncertainDatabase.from_rows(
            [("T1", "ab", 0.9), ("T2", "ab", 0.9), ("T3", "ab", 0.9)]
        )
        results, _ = assert_matches_oracle(db, 3, 0.5)
        assert {r.itemset for r in results} == {("a", "b")}
        assert results[0].probability == pytest.approx(0.9**3)

    def test_pfct_barely_below_probability(self):
        db = UncertainDatabase.from_rows([("T1", "a", 0.9)])
        # Pr_FC({a}) = 0.9; thresholds straddling it flip membership.
        assert {r.itemset for r in mine_pfci(db, 1, pfct=0.89999)} == {("a",)}
        assert mine_pfci(db, 1, pfct=0.9) == []

    def test_every_variant_on_singleton_database(self):
        db = UncertainDatabase.from_rows([("T1", "a", 0.4)])
        for flags in (
            {},
            {"use_chernoff_pruning": False},
            {"use_probability_bounds": False},
        ):
            results = MPFCIMiner(
                db, MinerConfig(min_sup=1, pfct=0.3, **flags)
            ).mine()
            assert [r.itemset for r in results] == [("a",)]
            assert results[0].probability == pytest.approx(0.4)


class TestLowProbabilityRegime:
    def test_tiny_probabilities(self):
        """Everything is improbable: no results, no crashes."""
        db = UncertainDatabase.from_rows(
            [(f"T{i}", "ab", 0.01) for i in range(8)]
        )
        assert mine_pfci(db, min_sup=4, pfct=0.5) == []

    def test_chernoff_pruning_kills_everything_early(self):
        db = UncertainDatabase.from_rows(
            [(f"T{i}", "ab", 0.05) for i in range(10)]
        )
        miner = MPFCIMiner(db, MinerConfig(min_sup=9, pfct=0.8))
        assert miner.mine() == []
        assert miner.stats.pruned_by_chernoff >= 1
        # The CH filter decided before any DP ran for those items.
        assert miner.stats.nodes_visited == 0


class TestItemOrderSensitivity:
    """Result sets must not depend on item naming (enumeration order)."""

    @pytest.mark.parametrize("mapping", [
        {"a": "z", "b": "y", "c": "x", "d": "w"},   # full reversal
        {"a": "m", "b": "a", "c": "q", "d": "b"},   # scramble
    ])
    def test_renaming_items_preserves_results(self, paper_db, mapping):
        renamed_rows = [
            (txn.tid, tuple(mapping[item] for item in txn.items), txn.probability)
            for txn in paper_db
        ]
        renamed = UncertainDatabase.from_rows(renamed_rows)
        original = {
            frozenset(r.itemset): round(r.probability, 9)
            for r in mine_pfci(paper_db, 2, pfct=0.8)
        }
        translated = {
            frozenset(mapping[item] for item in itemset): probability
            for itemset, probability in original.items()
        }
        got = {
            frozenset(r.itemset): round(r.probability, 9)
            for r in mine_pfci(renamed, 2, pfct=0.8)
        }
        assert got == translated

    def test_bfs_agrees_on_adversarial_order(self):
        """Superset pruning depends on item order; BFS (which cannot use it)
        must still agree."""
        db = UncertainDatabase.from_rows(
            [("T1", "zy", 0.9), ("T2", "zyx", 0.8), ("T3", "x", 0.7),
             ("T4", "zx", 0.6)]
        )
        config = MinerConfig(min_sup=1, pfct=0.3, exact_event_limit=32)
        dfs = {r.itemset for r in MPFCIMiner(db, config).mine()}
        bfs = {r.itemset for r in MPFCIBreadthFirstMiner(db, config).mine()}
        truth = set(exact_frequent_closed_itemsets(db, 1, 0.3))
        assert dfs == bfs == truth


class TestNumericRobustness:
    def test_many_transactions_probability_underflow(self):
        """600 rows: world probabilities underflow but tail DP must not."""
        db = UncertainDatabase.from_rows(
            [(f"T{i}", "ab", 0.5) for i in range(600)]
        )
        results = mine_pfci(db, min_sup=250, pfct=0.9)
        assert {r.itemset for r in results} == {("a", "b")}
        assert 0.9 < results[0].probability <= 1.0

    def test_duplicate_probability_values(self):
        db = UncertainDatabase.from_rows(
            [(f"T{i}", "abc"[: (i % 3) + 1], 0.5) for i in range(9)]
        )
        assert_matches_oracle(db, 2, 0.4)
