"""Tests for the attribute-level uncertainty substrate."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.uncertain.item_model import (
    ItemUncertainDatabase,
    ItemUncertainTransaction,
    mine_expected_support_item_model,
    mine_probabilistic_frequent_item_model,
)


@pytest.fixture
def small_db():
    return ItemUncertainDatabase.from_rows(
        [
            ("T1", {"a": 0.9, "b": 0.5}),
            ("T2", {"a": 0.8, "c": 1.0}),
            ("T3", {"a": 0.7, "b": 0.6, "c": 0.4}),
        ]
    )


@st.composite
def item_databases(draw):
    num_transactions = draw(st.integers(min_value=1, max_value=3))
    rows = []
    for index in range(num_transactions):
        num_items = draw(st.integers(min_value=1, max_value=3))
        items = {}
        for item in "abc"[:num_items]:
            items[item] = round(
                draw(st.floats(min_value=0.1, max_value=1.0, allow_nan=False)), 2
            )
        rows.append((f"T{index}", items))
    return ItemUncertainDatabase.from_rows(rows)


class TestTransaction:
    def test_containment_probability(self):
        txn = ItemUncertainTransaction("T1", {"a": 0.5, "b": 0.4})
        assert txn.containment_probability("a") == 0.5
        assert txn.containment_probability("ab") == pytest.approx(0.2)
        assert txn.containment_probability("ac") == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="no items"):
            ItemUncertainTransaction("T1", {})
        with pytest.raises(ValueError, match="probability"):
            ItemUncertainTransaction("T1", {"a": 0.0})
        with pytest.raises(ValueError, match="probability"):
            ItemUncertainTransaction("T1", {"a": 1.5})


class TestDatabase:
    def test_basic_accessors(self, small_db):
        assert len(small_db) == 3
        assert small_db.items == ("a", "b", "c")
        assert small_db[1].tid == "T2"

    def test_duplicate_tids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ItemUncertainDatabase.from_rows(
                [("T1", {"a": 0.5}), ("T1", {"b": 0.5})]
            )

    def test_expected_support(self, small_db):
        assert small_db.expected_support("a") == pytest.approx(0.9 + 0.8 + 0.7)
        assert small_db.expected_support("ab") == pytest.approx(
            0.9 * 0.5 + 0.7 * 0.6
        )

    def test_frequent_probability_simple(self, small_db):
        # Pr[support({a}) >= 3] = 0.9 * 0.8 * 0.7.
        assert small_db.frequent_probability("a", 3) == pytest.approx(0.504)

    def test_worlds_sum_to_one(self, small_db):
        total = sum(probability for _w, probability in small_db.enumerate_worlds())
        assert total == pytest.approx(1.0)

    def test_world_enumeration_guard(self):
        rows = [(f"T{i}", {"a": 0.5, "b": 0.5, "c": 0.5, "d": 0.5}) for i in range(5)]
        with pytest.raises(ValueError, match="refusing"):
            list(ItemUncertainDatabase.from_rows(rows).enumerate_worlds())

    @given(item_databases())
    @settings(max_examples=25, deadline=None)
    def test_frequent_probability_matches_world_oracle(self, db):
        """Pr_F from the Poisson-binomial reduction == world enumeration."""
        for itemset in [("a",), ("a", "b")]:
            for min_sup in (1, 2):
                oracle = sum(
                    probability
                    for world, probability in db.enumerate_worlds()
                    if sum(1 for txn in world if set(itemset) <= set(txn)) >= min_sup
                )
                assert db.frequent_probability(itemset, min_sup) == pytest.approx(
                    oracle, abs=1e-9
                )

    @given(item_databases())
    @settings(max_examples=25, deadline=None)
    def test_expected_support_matches_world_oracle(self, db):
        for itemset in [("a",), ("a", "b")]:
            oracle = sum(
                probability * sum(1 for txn in world if set(itemset) <= set(txn))
                for world, probability in db.enumerate_worlds()
            )
            assert db.expected_support(itemset) == pytest.approx(oracle, abs=1e-9)


class TestItemModelMiners:
    def test_expected_support_mining(self, small_db):
        results = dict(mine_expected_support_item_model(small_db, 1.0))
        assert results[("a",)] == pytest.approx(2.4)
        assert ("a", "b") not in results  # E = 0.87 < 1.0

    def test_probabilistic_frequent_mining(self, small_db):
        results = dict(mine_probabilistic_frequent_item_model(small_db, 2, 0.5))
        # Pr[support({a}) >= 2] = 0.9*0.8*0.3 + 0.9*0.2*0.7 + 0.1*0.8*0.7 + 0.9*0.8*0.7
        assert results[("a",)] == pytest.approx(
            0.9 * 0.8 * 0.3 + 0.9 * 0.2 * 0.7 + 0.1 * 0.8 * 0.7 + 0.9 * 0.8 * 0.7
        )

    def test_models_disagree_on_high_variance_items(self):
        """The motivating gap: same expectation, different tail."""
        concentrated = ItemUncertainDatabase.from_rows(
            [(f"T{i}", {"a": 1.0}) for i in range(2)]
            + [(f"S{i}", {"a": 0.001}) for i in range(3)]
        )
        spread = ItemUncertainDatabase.from_rows(
            [(f"T{i}", {"a": 0.4006}) for i in range(5)]
        )
        # Both have E[support] ~ 2.003 ...
        assert concentrated.expected_support("a") == pytest.approx(
            spread.expected_support("a"), abs=1e-6
        )
        # ... but very different Pr[support >= 2].
        assert concentrated.frequent_probability("a", 2) > 0.99
        assert spread.frequent_probability("a", 2) < 0.70

    @given(item_databases(), st.sampled_from([0.3, 0.6]))
    @settings(max_examples=20, deadline=None)
    def test_probabilistic_mining_matches_brute_force(self, db, pft):
        min_sup = 1
        expected = set()
        for size in range(1, len(db.items) + 1):
            for combo in itertools.combinations(db.items, size):
                if db.frequent_probability(combo, min_sup) > pft:
                    expected.add(combo)
        got = {
            x for x, _v in mine_probabilistic_frequent_item_model(db, min_sup, pft)
        }
        assert got == expected

    def test_validation(self, small_db):
        with pytest.raises(ValueError):
            mine_expected_support_item_model(small_db, 0.0)
        with pytest.raises(ValueError):
            mine_probabilistic_frequent_item_model(small_db, 0, 0.5)
        with pytest.raises(ValueError):
            mine_probabilistic_frequent_item_model(small_db, 1, 1.0)
