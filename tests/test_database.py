"""Unit and property tests for the uncertain database data model."""


import pytest
from hypothesis import given, settings

from repro.core.database import (
    UncertainDatabase,
    UncertainTransaction,
    difference_tidsets,
    intersect_tidsets,
    paper_table2_database,
    paper_table4_database,
)
from tests.conftest import uncertain_databases


class TestUncertainTransaction:
    def test_basic_construction(self):
        txn = UncertainTransaction("T1", ("b", "a"), 0.5)
        assert txn.items == ("a", "b")
        assert txn.contains("a")
        assert txn.contains(("a", "b"))
        assert not txn.contains(("a", "c"))

    @pytest.mark.parametrize("probability", [0.0, -0.1, 1.5, 2.0])
    def test_rejects_bad_probability(self, probability):
        with pytest.raises(ValueError, match="probability"):
            UncertainTransaction("T1", ("a",), probability)

    def test_rejects_empty_items(self):
        with pytest.raises(ValueError, match="empty"):
            UncertainTransaction("T1", (), 0.5)

    def test_probability_one_allowed(self):
        assert UncertainTransaction("T1", ("a",), 1.0).probability == 1.0


class TestUncertainDatabase:
    def test_from_rows(self):
        db = UncertainDatabase.from_rows([("T1", "ab", 0.5), ("T2", "bc", 0.9)])
        assert len(db) == 2
        assert db.items == ("a", "b", "c")
        assert db.probabilities == (0.5, 0.9)

    def test_from_itemsets_generates_tids(self):
        db = UncertainDatabase.from_itemsets(["ab", "c"], [0.3, 0.4])
        assert [txn.tid for txn in db] == ["T1", "T2"]

    def test_rejects_duplicate_tids(self):
        with pytest.raises(ValueError, match="duplicate"):
            UncertainDatabase.from_rows([("T1", "a", 0.5), ("T1", "b", 0.5)])

    def test_tidsets(self):
        db = paper_table2_database()
        assert db.tidset("a") == (0, 1, 2, 3)
        assert db.tidset("d") == (0, 3)
        assert db.tidset("ad") == (0, 3)
        assert db.tidset(()) == (0, 1, 2, 3)
        assert db.tidset("ax") == ()

    def test_counts_match_paper(self):
        db = paper_table2_database()
        assert db.count("abcd") == 2  # Definition 4.2's worked example
        assert db.count("abc") == 4

    def test_expected_support(self):
        db = paper_table2_database()
        assert db.expected_support("abc") == pytest.approx(0.9 + 0.6 + 0.7 + 0.9)
        assert db.expected_support("d") == pytest.approx(1.8)

    def test_world_probability(self):
        db = paper_table2_database()
        # PW5 of Table III: T1, T2, T3 present, T4 absent -> 0.0378.
        assert db.world_probability([0, 1, 2]) == pytest.approx(
            0.9 * 0.6 * 0.7 * 0.1
        )

    def test_world_materialization(self):
        db = paper_table2_database()
        assert db.world([0, 3]) == [("a", "b", "c", "d"), ("a", "b", "c", "d")]

    def test_certain_projection(self):
        db = paper_table2_database()
        assert len(db.certain_projection()) == 4
        assert db.certain_projection()[1] == ("a", "b", "c")

    def test_restrict(self):
        db = paper_table2_database()
        sub = db.restrict([0, 3])
        assert len(sub) == 2
        assert sub[0].tid == "T1"
        assert sub[1].tid == "T4"

    def test_table4_has_six_rows(self):
        assert len(paper_table4_database()) == 6

    @given(uncertain_databases())
    @settings(max_examples=30, deadline=None)
    def test_tidset_of_pair_is_intersection(self, db):
        items = db.items
        if len(items) >= 2:
            pair = (items[0], items[-1])
            expected = intersect_tidsets(
                db.tidset_of_item(pair[0]), db.tidset_of_item(pair[1])
            )
            assert db.tidset(pair) == expected

    @given(uncertain_databases())
    @settings(max_examples=30, deadline=None)
    def test_counts_are_consistent(self, db):
        for item in db.items:
            assert db.count((item,)) == len(db.tidset_of_item(item))
            assert db.count((item,)) == sum(
                1 for txn in db if item in txn.items
            )


class TestTidsetAlgebra:
    def test_intersect(self):
        assert intersect_tidsets((0, 1, 3, 5), (1, 2, 3, 6)) == (1, 3)

    def test_intersect_empty(self):
        assert intersect_tidsets((), (1, 2)) == ()
        assert intersect_tidsets((1, 2), ()) == ()

    def test_intersect_disjoint(self):
        assert intersect_tidsets((0, 2), (1, 3)) == ()

    def test_difference(self):
        assert difference_tidsets((0, 1, 2, 3), (1, 3)) == (0, 2)

    def test_difference_of_equal_is_empty(self):
        assert difference_tidsets((1, 2), (1, 2)) == ()
