"""Tests for the Poisson-binomial support machinery."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.database import paper_table2_database
from repro.core.support import (
    SupportDistributionCache,
    expected_support,
    frequent_probability,
    frequent_probability_python,
    sample_conditional_presence,
    support_pmf,
    support_variance,
    tail_probability_table,
)
from tests.strategies import probability_lists


def brute_force_tail(probabilities, min_sup):
    total = 0.0
    for mask in range(1 << len(probabilities)):
        count = 0
        weight = 1.0
        for position, probability in enumerate(probabilities):
            if mask >> position & 1:
                count += 1
                weight *= probability
            else:
                weight *= 1.0 - probability
        if count >= min_sup:
            total += weight
    return total


class TestFrequentProbability:
    def test_paper_values(self):
        # Pr[support({abc}) >= 2] on Table II = 0.9726.
        assert frequent_probability([0.9, 0.6, 0.7, 0.9], 2) == pytest.approx(0.9726)
        # Pr[support({abcd}) >= 2] = 0.81.
        assert frequent_probability([0.9, 0.9], 2) == pytest.approx(0.81)

    def test_min_sup_zero_is_certain(self):
        assert frequent_probability([0.3], 0) == 1.0
        assert frequent_probability([], 0) == 1.0

    def test_min_sup_above_count_is_impossible(self):
        assert frequent_probability([0.9, 0.9], 3) == 0.0
        assert frequent_probability([], 1) == 0.0

    def test_all_certain_transactions(self):
        assert frequent_probability([1.0, 1.0, 1.0], 3) == pytest.approx(1.0)
        assert frequent_probability([1.0, 1.0], 2) == pytest.approx(1.0)

    def test_rejects_invalid_probability(self):
        with pytest.raises(ValueError):
            frequent_probability([1.5], 1)

    @given(probability_lists(max_size=8), st.integers(min_value=0, max_value=9))
    @settings(max_examples=80, deadline=None)
    def test_matches_brute_force(self, probabilities, min_sup):
        expected = brute_force_tail(probabilities, min_sup)
        assert frequent_probability(probabilities, min_sup) == pytest.approx(
            expected, abs=1e-9
        )

    @given(probability_lists(max_size=10), st.integers(min_value=0, max_value=11))
    @settings(max_examples=80, deadline=None)
    def test_numpy_and_python_agree(self, probabilities, min_sup):
        assert frequent_probability(probabilities, min_sup) == pytest.approx(
            frequent_probability_python(probabilities, min_sup), abs=1e-12
        )

    @given(probability_lists(max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_min_sup(self, probabilities):
        values = [
            frequent_probability(probabilities, min_sup)
            for min_sup in range(len(probabilities) + 2)
        ]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))


class TestSupportPmf:
    def test_sums_to_one(self):
        pmf = support_pmf([0.9, 0.6, 0.7, 0.9])
        assert pmf.sum() == pytest.approx(1.0)

    def test_matches_tail(self):
        probabilities = [0.2, 0.8, 0.5]
        pmf = support_pmf(probabilities)
        for min_sup in range(5):
            assert pmf[min_sup:].sum() == pytest.approx(
                frequent_probability(probabilities, min_sup)
            )

    def test_empty(self):
        pmf = support_pmf([])
        assert pmf.tolist() == [1.0]

    def test_moments(self):
        probabilities = [0.3, 0.5, 0.9]
        pmf = support_pmf(probabilities)
        mean = sum(value * weight for value, weight in enumerate(pmf))
        assert mean == pytest.approx(expected_support(probabilities))
        second = sum(value**2 * weight for value, weight in enumerate(pmf))
        assert second - mean**2 == pytest.approx(support_variance(probabilities))


class TestTailTable:
    def test_first_row_is_tail_probability(self):
        probabilities = [0.3, 0.9, 0.5, 0.2]
        table = tail_probability_table(probabilities, 3)
        for min_sup in range(4):
            assert table[0][min_sup] == pytest.approx(
                frequent_probability(probabilities, min_sup)
            )

    def test_terminal_row(self):
        table = tail_probability_table([0.5], 2)
        assert table[1][0] == 1.0
        assert table[1][1] == 0.0
        assert table[1][2] == 0.0


class TestConditionalSampler:
    def test_every_sample_satisfies_condition(self, rng):
        probabilities = [0.2, 0.5, 0.7, 0.3, 0.9]
        for _ in range(300):
            bits = sample_conditional_presence(probabilities, 3, rng)
            assert sum(bits) >= 3

    def test_zero_probability_condition_raises(self, rng):
        with pytest.raises(ValueError):
            sample_conditional_presence([0.5], 2, rng)

    def test_distribution_matches_conditional(self, rng):
        """Empirical frequencies match the exact conditional distribution."""
        probabilities = [0.3, 0.6, 0.8]
        min_sup = 2
        tail = frequent_probability(probabilities, min_sup)
        # Exact conditional probability of each admissible outcome.
        exact = {}
        for mask in range(8):
            bits = tuple(bool(mask >> position & 1) for position in range(3))
            if sum(bits) < min_sup:
                continue
            weight = 1.0
            for bit, probability in zip(bits, probabilities):
                weight *= probability if bit else 1.0 - probability
            exact[bits] = weight / tail
        draws = Counter(
            tuple(sample_conditional_presence(probabilities, min_sup, rng))
            for _ in range(20000)
        )
        for outcome, probability in exact.items():
            assert draws[outcome] / 20000 == pytest.approx(probability, abs=0.02)

    def test_unconditioned_when_min_sup_zero(self, rng):
        bits = sample_conditional_presence([0.5, 0.5], 0, rng)
        assert len(bits) == 2


class TestSupportDistributionCache:
    def test_caches_by_tidset(self):
        db = paper_table2_database()
        cache = SupportDistributionCache(db, 2)
        first = cache.frequent_probability_of_itemset("abc")
        second = cache.frequent_probability_of_itemset("ab")  # same tidset
        assert first == second
        assert cache.hits == 1
        assert cache.misses == 1

    def test_distinct_tidsets_are_distinct_entries(self):
        db = paper_table2_database()
        cache = SupportDistributionCache(db, 2)
        cache.frequent_probability_of_itemset("abc")
        cache.frequent_probability_of_itemset("abcd")
        assert cache.misses == 2

    def test_values_match_direct_computation(self):
        db = paper_table2_database()
        cache = SupportDistributionCache(db, 2)
        assert cache.frequent_probability_of_itemset("d") == pytest.approx(0.81)
