"""The ``.utdz`` zero-copy columnar format: round-trips, identity, failure.

Three contracts matter:

* **Round-trip** — a columnar save/load describes the identical database as
  the text parse it came from: same transactions, same items, and
  bit-exact float64 probabilities (the text format rounds to decimal
  digits; the columnar format must not lose anything *further*).
* **Identity** — ``repro.runtime.fingerprint`` is computed over database
  contents, so a text load and a columnar load of the same data must hash
  identically; that equality is what lets the service's content-addressed
  result cache serve jobs regardless of which format materialized them.
* **Failure** — a damaged file must fail loudly with a
  :class:`ColumnarFormatError` naming the file and the defect, never
  produce a silently-wrong database.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.config import MinerConfig
from repro.core.database import UncertainDatabase, paper_table2_database
from repro.core.miner import MPFCIMiner
from repro.data import (
    ColumnarFormatError,
    ColumnarUncertainDatabase,
    load_columnar,
    save_columnar,
)
from repro.data.columnar import _PREAMBLE
from repro.data.io import load_uncertain_database, save_uncertain_database
from repro.runtime.checkpoint import database_sha256, fingerprint


@pytest.fixture
def database() -> UncertainDatabase:
    return paper_table2_database()


def assert_same_database(left: UncertainDatabase, right: UncertainDatabase):
    assert len(left) == len(right)
    assert left.items == right.items
    for a, b in zip(left.transactions, right.transactions):
        assert a.tid == b.tid
        assert tuple(a.items) == tuple(b.items)
        assert a.probability == b.probability  # bit-exact, not approx


class TestRoundTrip:
    def test_columnar_matches_text_parse(self, database, tmp_path):
        text_path = tmp_path / "db.utd"
        columnar_path = tmp_path / "db.utdz"
        save_uncertain_database(database, text_path)
        parsed = load_uncertain_database(text_path)
        save_columnar(parsed, columnar_path)
        loaded = load_columnar(columnar_path)
        assert isinstance(loaded, ColumnarUncertainDatabase)
        assert_same_database(parsed, loaded)

    def test_io_dispatch_on_suffix(self, database, tmp_path):
        path = tmp_path / "db.utdz"
        save_uncertain_database(database, path)
        loaded = load_uncertain_database(path)
        assert isinstance(loaded, ColumnarUncertainDatabase)
        assert_same_database(database, loaded)

    def test_load_is_lazy(self, database, tmp_path):
        path = tmp_path / "db.utdz"
        save_columnar(database, path)
        loaded = load_columnar(path)
        # Opening the file must not materialize any per-row structure; the
        # load-time win the format exists for is exactly this.
        assert loaded._lazy_transactions is None
        assert loaded._lazy_vertical is None
        assert loaded._lazy_probabilities is None
        # Building the bitmap engine adopts the memmap regions directly and
        # must not force the lazy fields either.
        loaded.tidset_engine("bitmap")
        assert loaded._lazy_vertical is None

    def test_pickle_round_trip(self, database, tmp_path):
        path = tmp_path / "db.utdz"
        save_columnar(database, path)
        loaded = load_columnar(path)
        clone = pickle.loads(pickle.dumps(loaded))
        assert_same_database(loaded, clone)
        assert database_sha256(clone) == database_sha256(database)

    def test_mining_parity_from_columnar(self, database, tmp_path):
        path = tmp_path / "db.utdz"
        save_columnar(database, path)
        loaded = load_columnar(path)
        for backend in ("tuple", "bitmap"):
            config = MinerConfig(min_sup=2, tidset_backend=backend)
            direct = MPFCIMiner(database, config).mine()
            columnar = MPFCIMiner(loaded, config).mine()
            assert [r.itemset for r in direct] == [r.itemset for r in columnar]
            assert [r.probability for r in direct] == [
                r.probability for r in columnar
            ]


class TestFingerprintIdentity:
    def test_fingerprint_identical_across_text_and_columnar(
        self, database, tmp_path
    ):
        text_path = tmp_path / "db.utd"
        columnar_path = tmp_path / "db.utdz"
        save_uncertain_database(database, text_path)
        parsed = load_uncertain_database(text_path)
        save_uncertain_database(parsed, columnar_path)
        columnar = load_uncertain_database(columnar_path)
        config = MinerConfig(min_sup=2)
        assert fingerprint(parsed, config) == fingerprint(columnar, config)
        assert database_sha256(parsed) == database_sha256(columnar)

    def test_columnar_save_is_lossless(self, database, tmp_path):
        # Unlike the text format (decimal rounding), columnar round-trips
        # the in-memory database's float64 probabilities bit-exactly.
        path = tmp_path / "db.utdz"
        save_columnar(database, path)
        assert database_sha256(load_columnar(path)) == database_sha256(database)


class TestCorruptFiles:
    def _valid_bytes(self, database, tmp_path) -> bytes:
        path = tmp_path / "valid.utdz"
        save_columnar(database, path)
        return path.read_bytes()

    def _expect_error(self, tmp_path, payload: bytes, match: str):
        path = tmp_path / "broken.utdz"
        path.write_bytes(payload)
        with pytest.raises(ColumnarFormatError, match=match) as excinfo:
            load_columnar(path)
        # The message must name the offending file.
        assert "broken.utdz" in str(excinfo.value)

    def test_too_short_for_preamble(self, tmp_path):
        self._expect_error(tmp_path, b"UT", match="not a .utdz file")

    def test_bad_magic(self, database, tmp_path):
        payload = bytearray(self._valid_bytes(database, tmp_path))
        payload[:4] = b"NOPE"
        self._expect_error(tmp_path, bytes(payload), match="bad magic")

    def test_unsupported_version(self, database, tmp_path):
        payload = bytearray(self._valid_bytes(database, tmp_path))
        payload[4:8] = (99).to_bytes(4, "little")
        self._expect_error(
            tmp_path, bytes(payload), match="unsupported .utdz version 99"
        )

    def test_header_longer_than_file(self, database, tmp_path):
        payload = bytearray(self._valid_bytes(database, tmp_path))
        payload[8:16] = (10**9).to_bytes(8, "little")
        self._expect_error(tmp_path, bytes(payload), match="header claims")

    def test_corrupt_header_json(self, database, tmp_path):
        payload = bytearray(self._valid_bytes(database, tmp_path))
        payload[_PREAMBLE.size] = ord("!")  # break the JSON object
        self._expect_error(tmp_path, bytes(payload), match="corrupt .utdz header")

    def test_truncated_regions(self, database, tmp_path):
        payload = self._valid_bytes(database, tmp_path)
        self._expect_error(
            tmp_path, payload[: len(payload) // 2], match="truncated .utdz file"
        )

    def test_text_file_with_wrong_suffix(self, database, tmp_path):
        text = tmp_path / "db.utd"
        save_uncertain_database(database, text)
        self._expect_error(tmp_path, text.read_bytes(), match="not a .utdz file")


class TestAtomicWrites:
    """``save_columnar`` lands via temp + fsync + rename: a failed save can
    never leave a truncated ``.utdz`` (or a stray temp file) behind."""

    def test_save_leaves_no_temp_sibling(self, tmp_path, database):
        path = tmp_path / "db.utdz"
        save_columnar(database, path)
        assert_same_database(load_columnar(path), database)
        assert [p.name for p in tmp_path.iterdir()] == ["db.utdz"]

    def test_failed_replace_preserves_previous_contents(
        self, tmp_path, database, monkeypatch
    ):
        import errno
        import os as os_module

        path = tmp_path / "db.utdz"
        save_columnar(database, path)
        before = path.read_bytes()

        real_replace = os_module.replace

        def full_disk(src, dst, *args, **kwargs):
            if str(dst) == str(path):
                raise OSError(errno.ENOSPC, "No space left on device")
            return real_replace(src, dst, *args, **kwargs)

        from repro.data import columnar as columnar_module

        monkeypatch.setattr(columnar_module.os, "replace", full_disk)
        smaller = UncertainDatabase(list(database)[:2])
        with pytest.raises(OSError):
            save_columnar(smaller, path)
        monkeypatch.undo()
        # The original file is untouched and the temp file was cleaned up.
        assert path.read_bytes() == before
        assert [p.name for p in tmp_path.iterdir()] == ["db.utdz"]
        assert_same_database(load_columnar(path), database)
