"""Cross-module integration tests on generated workloads.

These exercise the full pipeline (generator -> uncertainty injection -> I/O
-> miners) and assert the structural relationships that hold between the
result families by definition:

* every PFCI is a PFI (``Pr_F >= Pr_FC > pfct``);
* every exact FCI is an FI, and closed mining loses no support information
  (every FI has a closed superset with equal support);
* all three frameworks (DFS, BFS, Naive) agree on generated data;
* serialization round-trips preserve mining results.
"""

import math

import pytest

from repro.core.bfs import MPFCIBreadthFirstMiner
from repro.core.config import MinerConfig
from repro.core.miner import MPFCIMiner
from repro.core.naive import NaiveMiner
from repro.data import attach_gaussian_probabilities, generate_quest
from repro.data.io import load_uncertain_database, save_uncertain_database
from repro.data.mushroom import generate_mushroom_like
from repro.data.quest import QuestParameters
from repro.exact.charm import mine_closed_itemsets
from repro.exact.fpgrowth import mine_frequent_itemsets_fpgrowth
from repro.uncertain.pfim import mine_probabilistic_frequent_itemsets


@pytest.fixture(scope="module")
def quest_db():
    transactions = generate_quest(
        QuestParameters(
            num_transactions=120, avg_transaction_length=6.0,
            avg_pattern_length=3.0, num_items=14, seed=21,
        )
    )
    return attach_gaussian_probabilities(transactions, 0.75, 0.15, seed=21)


@pytest.fixture(scope="module")
def mushroom_db():
    rows = generate_mushroom_like(num_rows=60, seed=3)
    return attach_gaussian_probabilities(rows, 0.6, 0.3, seed=3)


class TestResultFamilyInclusions:
    @pytest.mark.parametrize("fixture", ["quest_db", "mushroom_db"])
    def test_pfci_subset_of_pfi(self, request, fixture):
        db = request.getfixturevalue(fixture)
        min_sup = max(1, math.ceil(0.2 * len(db)))
        pfcis = {
            r.itemset
            for r in MPFCIMiner(db, MinerConfig(min_sup=min_sup, pfct=0.6)).mine()
        }
        pfis = {x for x, _p in mine_probabilistic_frequent_itemsets(db, min_sup, 0.6)}
        assert pfcis <= pfis

    @pytest.mark.parametrize("fixture", ["quest_db", "mushroom_db"])
    def test_fci_subset_of_fi_with_support_coverage(self, request, fixture):
        db = request.getfixturevalue(fixture)
        certain = db.certain_projection()
        min_sup = max(1, math.ceil(0.2 * len(certain)))
        fis = dict(mine_frequent_itemsets_fpgrowth(certain, min_sup))
        fcis = dict(mine_closed_itemsets(certain, min_sup))
        assert set(fcis) <= set(fis)
        # Lossless compression: every FI has a closed superset with equal
        # support (that is what makes closed itemsets a summary, not a
        # sample).
        for itemset, support in fis.items():
            assert any(
                set(itemset) <= set(closed) and closed_support == support
                for closed, closed_support in fcis.items()
            )

    def test_pfci_probability_never_exceeds_frequent_probability(self, quest_db):
        min_sup = max(1, math.ceil(0.25 * len(quest_db)))
        results = MPFCIMiner(
            quest_db, MinerConfig(min_sup=min_sup, pfct=0.5)
        ).mine()
        assert results
        for result in results:
            assert result.probability <= result.frequent_probability + 1e-9


class TestFrameworkAgreementAtScale:
    def test_dfs_bfs_naive_agree(self, quest_db):
        min_sup = max(1, math.ceil(0.3 * len(quest_db)))
        config = MinerConfig(min_sup=min_sup, pfct=0.7, epsilon=0.05,
                             delta=0.05, exact_event_limit=20)
        dfs = {r.itemset for r in MPFCIMiner(quest_db, config).mine()}
        bfs = {r.itemset for r in MPFCIBreadthFirstMiner(quest_db, config).mine()}
        naive = {r.itemset for r in NaiveMiner(quest_db, config).mine()}
        assert dfs == bfs
        # Naive samples everything; allow borderline-only disagreement.
        for itemset in dfs ^ naive:
            from repro.core.closedness import frequent_closed_probability_exact

            value = frequent_closed_probability_exact(quest_db, itemset, min_sup)
            assert abs(value - 0.7) < 0.07

    def test_dense_mushroom_agreement(self, mushroom_db):
        min_sup = max(1, math.ceil(0.3 * len(mushroom_db)))
        config = MinerConfig(min_sup=min_sup, pfct=0.7, exact_event_limit=20)
        dfs = {r.itemset for r in MPFCIMiner(mushroom_db, config).mine()}
        bfs = {r.itemset for r in MPFCIBreadthFirstMiner(mushroom_db, config).mine()}
        assert dfs == bfs


class TestPipelineRoundTrip:
    def test_save_load_preserves_mining_results(self, quest_db, tmp_path):
        path = tmp_path / "quest.utd"
        save_uncertain_database(quest_db, path)
        reloaded = load_uncertain_database(path)
        min_sup = max(1, math.ceil(0.3 * len(quest_db)))
        config = MinerConfig(min_sup=min_sup, pfct=0.7)
        # The .utd text format stores items as strings, so compare the
        # stringified original against the reloaded run.
        original = sorted(
            (tuple(sorted(str(item) for item in r.itemset)), round(r.probability, 9))
            for r in MPFCIMiner(quest_db, config).mine()
        )
        roundtripped = sorted(
            (r.itemset, round(r.probability, 9))
            for r in MPFCIMiner(reloaded, config).mine()
        )
        assert original == roundtripped

    def test_seeded_runs_are_identical(self, mushroom_db):
        min_sup = max(1, math.ceil(0.25 * len(mushroom_db)))
        config = MinerConfig(min_sup=min_sup, pfct=0.6, exact_event_limit=0)
        first = [(r.itemset, r.probability) for r in MPFCIMiner(mushroom_db, config).mine()]
        second = [(r.itemset, r.probability) for r in MPFCIMiner(mushroom_db, config).mine()]
        assert first == second
