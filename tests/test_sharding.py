"""Sharded-runtime tests: bit-identity, loss policies, checkpoints, merge.

The core contract (docs/robustness.md): mining a database as N supervised
row-range shards returns results bit-identical to the serial miner when no
shard is lost; losing shards under ``degrade-bounds`` returns exactly the
unsharded mining output of the surviving rows, re-tagged
``shard-degraded`` with certified global bounds; ``fail-strict`` refuses
to report partial data at all.
"""

import dataclasses
import random

import pytest

from repro.core.config import MinerConfig
from repro.core.database import UncertainDatabase
from repro.core.miner import MPFCIMiner
from repro.data.columnar import save_shards, shard_ranges
from repro.registry import SHARD_LOSS_POLICIES
from repro.runtime import (
    CheckpointCancelledError,
    CheckpointMismatchError,
    FaultPlan,
    ShardIntegrityError,
    ShardLossError,
    ShardMergeError,
    ShardSet,
    ShardedReport,
    SupervisorConfig,
    load_checkpoint,
    mine_pfci_sharded,
    run_sharded,
    sharded_fingerprint,
)
from repro.runtime.faults import BranchFault
from repro.runtime.sharding import MERGE_VERIFY_TOLERANCE, ShardScan, _merge_screen

from tests.strategies.databases import random_uncertain_database


@pytest.fixture(scope="module")
def database():
    # Large enough for several 64-row shard blocks.
    return random_uncertain_database(random.Random(42), rows=200, items="abcde")


@pytest.fixture(scope="module")
def config():
    return MinerConfig(min_sup=25, pfct=0.5, exact_event_limit=12, seed=7)


@pytest.fixture(scope="module")
def serial_results(database, config):
    return MPFCIMiner(database, config).mine()


def lose_shard(index):
    """A fault plan that permanently kills one shard's scan."""
    return FaultPlan(shard_faults={index: BranchFault("raise", attempts=99)})


class TestShardSet:
    def test_from_database_is_contiguous_and_aligned(self, database):
        shards = ShardSet.from_database(database, 3)
        assert shards.total_transactions == len(database)
        assert [
            (spec.start, spec.stop) for spec in shards.specs
        ] == shard_ranges(len(database), 3)
        for spec in shards.specs[:-1]:
            assert spec.start % 64 == 0

    def test_rejects_gaps_and_disorder(self, database):
        specs = ShardSet.from_database(database, 3).specs
        with pytest.raises(ValueError, match="out of order"):
            ShardSet((specs[0], specs[2]))
        with pytest.raises(ValueError, match="at least one"):
            ShardSet(())

    def test_manifest_roundtrip(self, tmp_path, database):
        manifest = save_shards(database, tmp_path, 3)
        shards = ShardSet.from_manifest(manifest)
        assert len(shards.specs) == 3
        assert shards.total_transactions == len(database)
        from_memory = ShardSet.from_database(database, 3)
        for disk, memory in zip(shards.specs, from_memory.specs):
            assert disk.sha256 == memory.sha256
            assert (disk.start, disk.stop) == (memory.start, memory.stop)


class TestBitIdentity:
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 5])
    def test_sharded_equals_serial(self, database, config, serial_results, num_shards):
        assert mine_pfci_sharded(
            database, config, num_shards, processes=2
        ) == serial_results

    def test_manifest_shards_equal_serial(
        self, tmp_path, database, config, serial_results
    ):
        shards = ShardSet.from_manifest(save_shards(database, tmp_path, 3))
        report = run_sharded(shards, config, processes=2)
        assert report.results == serial_results
        assert report.complete and not report.degraded
        assert report.stats.shards_planned == 3
        assert report.stats.shards_scanned == 3

    def test_recovered_shard_is_still_bit_identical(
        self, database, config, serial_results
    ):
        """A shard that crashes, retries, and recovers changes nothing."""
        plan = FaultPlan(shard_faults={1: BranchFault("raise", attempts=1)})
        report = run_sharded(
            ShardSet.from_database(database, 3), config, processes=2, fault_plan=plan
        )
        assert report.results == serial_results
        assert report.stats.shard_retries == 1


class TestLossPolicies:
    def test_registry_names_and_alias(self):
        names = SHARD_LOSS_POLICIES.names()
        assert "fail-strict" in names and "degrade-bounds" in names
        assert SHARD_LOSS_POLICIES.canonicalize("default") == "fail-strict"

    def test_fail_strict_raises_and_reports_nothing(self, database, config):
        with pytest.raises(ShardLossError, match="shard 1"):
            run_sharded(
                ShardSet.from_database(database, 3),
                config,
                processes=2,
                supervisor=SupervisorConfig(max_retries=0),
                fault_plan=lose_shard(1),
            )

    def test_degrade_bounds_matches_unsharded_survivors(self, database, config):
        shards = ShardSet.from_database(database, 3)
        lost = shards.specs[2]
        report = run_sharded(
            shards,
            config,
            processes=2,
            supervisor=SupervisorConfig(max_retries=0),
            shard_policy="degrade-bounds",
            fault_plan=lose_shard(2),
        )
        assert report.degraded
        assert set(report.lost_shards) == {2}
        surviving = UncertainDatabase(list(database)[: lost.start])
        expected = MPFCIMiner(surviving, config).mine()
        assert [r.itemset for r in report.results] == [r.itemset for r in expected]
        for result, base in zip(report.results, expected):
            assert result.provenance == "shard-degraded"
            assert result.frequent_probability == base.frequent_probability
            low, high = result.frequency_bounds
            assert low == min(1.0, result.frequent_probability)
            assert 0.0 <= low <= high <= 1.0
            s_low, s_high = result.support_bounds
            assert s_high == s_low + lost.transactions

    def test_losing_every_shard_still_fails(self, database, config):
        plan = FaultPlan(
            shard_faults={
                i: BranchFault("raise", attempts=99) for i in range(3)
            }
        )
        with pytest.raises(ShardLossError):
            run_sharded(
                ShardSet.from_database(database, 3),
                config,
                processes=2,
                supervisor=SupervisorConfig(max_retries=0),
                shard_policy="degrade-bounds",
                fault_plan=plan,
            )

    def test_missing_shard_file_goes_through_policy(
        self, tmp_path, database, config
    ):
        manifest = save_shards(database, tmp_path, 3)
        shards = ShardSet.from_manifest(manifest)
        shards.specs[1].path.unlink()
        with pytest.raises(ShardLossError, match="shard 1"):
            run_sharded(shards, config, processes=2)
        report = run_sharded(
            shards, config, processes=2, shard_policy="degrade-bounds"
        )
        assert report.degraded and set(report.lost_shards) == {1}

    def test_corrupted_shard_is_detected(self, tmp_path, database, config):
        manifest = save_shards(database, tmp_path, 3)
        shards = ShardSet.from_manifest(manifest)
        other = save_shards(database, tmp_path / "other", 2)
        # Swap in a valid .utdz with the wrong rows: the digest check must
        # catch it, and fail-strict must surface the integrity error.
        target = shards.specs[2].path
        target.write_bytes(ShardSet.from_manifest(other).specs[1].path.read_bytes())
        with pytest.raises(ShardLossError, match=ShardIntegrityError.__name__):
            run_sharded(
                shards,
                config,
                processes=2,
                supervisor=SupervisorConfig(max_retries=0, inline_fallback=False),
            )


class TestMergeVerification:
    def test_tampered_scan_trips_the_cross_check(self, database, config):
        # Chernoff pruning off so the tampered item still reaches the
        # verification step instead of being screened out first.
        config = dataclasses.replace(config, use_chernoff_pruning=False)
        shards = ShardSet.from_database(database, 2)
        scans = {}
        for spec in shards.specs:
            from repro.runtime.sharding import _scan_shard_worker

            payload = _scan_shard_worker(
                spec.source, spec.index, spec.sha256, config.min_sup, 0, None
            )
            scans[spec.index] = ShardScan(
                shard=spec.index,
                transactions=payload["transactions"],
                items=payload["items"],
                pmfs=payload["pmfs"],
            )
        # Gut shard 0's raw probability vector for one item but keep its
        # precomputed PMF: the convolution-vs-direct-DP check must notice
        # the two paths now disagree about Pr_F.
        probabilities = scans[0].items[0][1]
        probabilities[:] = [0.01] * len(probabilities)
        from repro.core.stats import MiningStats

        with pytest.raises(ShardMergeError, match="pmf_add merge"):
            _merge_screen(shards.specs, scans, config, MiningStats(), True)

    def test_tolerance_is_tight(self):
        assert MERGE_VERIFY_TOLERANCE <= 1e-9


class TestShardedCheckpoint:
    def test_fingerprint_encodes_layout_and_policy(self, database, config):
        shards3 = ShardSet.from_database(database, 3)
        shards2 = ShardSet.from_database(database, 2)
        fp3 = sharded_fingerprint(shards3, config, "fail-strict")
        assert fp3 != sharded_fingerprint(shards2, config, "fail-strict")
        assert fp3 != sharded_fingerprint(shards3, config, "degrade-bounds")

    def test_resume_over_finished_checkpoint_is_bit_identical(
        self, tmp_path, database, config, serial_results
    ):
        shards = ShardSet.from_database(database, 3)
        path = tmp_path / "run.ckpt"
        first = run_sharded(shards, config, processes=2, checkpoint_path=path)
        second = run_sharded(
            shards, config, processes=2, checkpoint_path=path,
            resume_from_checkpoint=True,
        )
        assert first.results == second.results == serial_results
        assert second.stats.shards_scanned == 0
        assert second.stats.checkpoint_shards_skipped == 3
        assert all(o.status == "checkpointed" for o in second.shard_outcomes)

    def test_shard_records_survive_shard_file_loss(
        self, tmp_path, database, config, serial_results
    ):
        """A scanned-then-lost shard file degrades at merge time on resume.

        The shard-scan records hold the screen's inputs, so the candidate
        screen still runs; only the mining rows are gone, and the loss
        policy decides.
        """
        manifest = save_shards(database, tmp_path / "shards", 3)
        shards = ShardSet.from_manifest(manifest)
        strict = tmp_path / "strict.ckpt"
        lenient = tmp_path / "lenient.ckpt"
        run_sharded(shards, config, processes=2, checkpoint_path=strict)
        run_sharded(
            shards, config, processes=2, checkpoint_path=lenient,
            shard_policy="degrade-bounds",
        )
        shards.specs[1].path.unlink()
        with pytest.raises(ShardLossError, match="merge time"):
            run_sharded(
                shards, config, processes=2, checkpoint_path=strict,
                resume_from_checkpoint=True,
            )
        degraded = run_sharded(
            shards, config, processes=2, checkpoint_path=lenient,
            resume_from_checkpoint=True, shard_policy="degrade-bounds",
        )
        assert degraded.degraded and set(degraded.lost_shards) == {1}

    def test_sharded_checkpoint_refuses_different_partition(
        self, tmp_path, database, config
    ):
        path = tmp_path / "run.ckpt"
        run_sharded(
            ShardSet.from_database(database, 3), config, processes=2,
            checkpoint_path=path,
        )
        with pytest.raises(CheckpointMismatchError):
            run_sharded(
                ShardSet.from_database(database, 2), config, processes=2,
                checkpoint_path=path, resume_from_checkpoint=True,
            )
        with pytest.raises(CheckpointMismatchError, match="shard_policy"):
            run_sharded(
                ShardSet.from_database(database, 3), config, processes=2,
                checkpoint_path=path, resume_from_checkpoint=True,
                shard_policy="degrade-bounds",
            )

    def test_unsharded_resume_refuses_sharded_checkpoint(
        self, tmp_path, database, config
    ):
        from repro.runtime import resume

        path = tmp_path / "run.ckpt"
        run_sharded(
            ShardSet.from_database(database, 3), config, processes=2,
            checkpoint_path=path,
        )
        with pytest.raises(CheckpointMismatchError):
            resume(database, config, path)

    def test_scan_cancellation_is_durable(self, tmp_path, database, config):
        import threading

        event = threading.Event()
        event.set()
        path = tmp_path / "run.ckpt"
        report = run_sharded(
            ShardSet.from_database(database, 3), config, processes=2,
            checkpoint_path=path, cancel_event=event,
        )
        assert report.scan_cancelled and report.cancelled
        assert not report.complete and report.results == []
        assert all(o.status == "cancelled" for o in report.shard_outcomes)
        assert load_checkpoint(path).cancelled
        with pytest.raises(CheckpointCancelledError):
            run_sharded(
                ShardSet.from_database(database, 3), config, processes=2,
                checkpoint_path=path, resume_from_checkpoint=True,
            )


class TestShardedReport:
    def test_roundtrips_through_dict(self, database, config):
        report = run_sharded(
            ShardSet.from_database(database, 3), config, processes=2,
            supervisor=SupervisorConfig(max_retries=0),
            shard_policy="degrade-bounds", fault_plan=lose_shard(0),
        )
        payload = report.to_dict()
        assert payload["degraded"] is True
        assert payload["shard_policy"] == "degrade-bounds"
        assert payload["lost_shards"].keys() == {"0"}
        restored = ShardedReport.from_dict(payload)
        assert restored.results == report.results
        assert restored.lost_shards == report.lost_shards
        assert [dataclasses.asdict(o) for o in restored.shard_outcomes] == [
            dataclasses.asdict(o) for o in report.shard_outcomes
        ]

    def test_degraded_bounds_survive_serialization(self, database, config):
        report = run_sharded(
            ShardSet.from_database(database, 3), config, processes=2,
            supervisor=SupervisorConfig(max_retries=0),
            shard_policy="degrade-bounds", fault_plan=lose_shard(0),
        )
        assert report.results, "need degraded results for this test"
        import json

        payload = json.loads(json.dumps(report.to_dict()))
        restored = ShardedReport.from_dict(payload)
        for before, after in zip(report.results, restored.results):
            assert after.frequency_bounds == before.frequency_bounds
            assert after.support_bounds == before.support_bounds
            assert after.provenance == "shard-degraded"
