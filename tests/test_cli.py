"""End-to-end tests of the command-line interface."""

import pytest

from repro.cli import main
from repro.core.database import paper_table2_database
from repro.data.io import save_uncertain_database


@pytest.fixture
def paper_file(tmp_path):
    path = tmp_path / "paper.utd"
    save_uncertain_database(paper_table2_database(), path)
    return str(path)


class TestMineCommand:
    def test_paper_example(self, paper_file, capsys):
        assert main(["mine", paper_file, "--min-sup", "2", "--pfct", "0.8"]) == 0
        output = capsys.readouterr().out
        assert "2 probabilistic frequent closed itemsets" in output
        assert "a b c d" in output
        assert "0.8754" in output

    def test_relative_min_sup(self, paper_file, capsys):
        assert main(["mine", paper_file, "--min-sup-ratio", "0.5"]) == 0
        assert "min_sup=2" in capsys.readouterr().out

    def test_framework_bfs(self, paper_file, capsys):
        assert main(["mine", paper_file, "--min-sup", "2", "--framework", "bfs"]) == 0
        assert "a b c d" in capsys.readouterr().out

    def test_framework_naive(self, paper_file, capsys):
        assert main(["mine", paper_file, "--min-sup", "2", "--framework", "naive"]) == 0
        assert "a b c d" in capsys.readouterr().out

    def test_disable_prunings(self, paper_file, capsys):
        assert (
            main(
                ["mine", paper_file, "--min-sup", "2",
                 "--disable", "ch", "super", "sub", "bound"]
            )
            == 0
        )
        assert "a b c" in capsys.readouterr().out

    def test_stats_flag(self, paper_file, capsys):
        assert main(["mine", paper_file, "--min-sup", "2", "--stats"]) == 0
        assert "nodes=" in capsys.readouterr().out

    def test_min_sup_required(self, paper_file):
        with pytest.raises(SystemExit):
            main(["mine", paper_file])


class TestStreamMineCommand:
    @pytest.fixture
    def quest_file(self, tmp_path):
        path = tmp_path / "stream.utd"
        assert (
            main(
                ["generate", str(path), "--kind", "quest", "--transactions", "60",
                 "--items", "10", "--avg-length", "4", "--avg-pattern", "2",
                 "--seed", "3"]
            )
            == 0
        )
        return str(path)

    def test_replay_reports_final_window(self, quest_file, capsys):
        assert (
            main(
                ["stream-mine", quest_file, "--window", "20",
                 "--min-sup", "4", "--pfct", "0.5"]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "PFCIs in the final window" in output
        assert "window=20" in output
        assert "60 slides" in output

    def test_relative_min_sup_uses_window(self, quest_file, capsys):
        assert (
            main(
                ["stream-mine", quest_file, "--window", "20",
                 "--min-sup-ratio", "0.2", "--pfct", "0.5", "--max-slides", "30"]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "min_sup=4" in output  # 0.2 of the 20-row window, not the file
        assert "30 slides" in output

    def test_matches_batch_miner_on_final_window(self, quest_file, capsys):
        """The incremental replay's final window equals batch mining the
        same last-20 transactions from scratch."""
        import json

        from repro.core.config import MinerConfig
        from repro.core.database import UncertainDatabase
        from repro.core.miner import MPFCIMiner
        from repro.data.io import load_uncertain_database

        assert (
            main(
                ["stream-mine", quest_file, "--window", "20",
                 "--min-sup", "4", "--pfct", "0.5", "--json"]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        database = load_uncertain_database(quest_file)
        window = UncertainDatabase(list(database)[-20:])
        config = MinerConfig(min_sup=4, pfct=0.5)
        scratch = MPFCIMiner(window, config).mine()
        assert payload["results"] == [result.to_dict() for result in scratch]

    def test_stats_and_json(self, quest_file, capsys):
        assert (
            main(
                ["stream-mine", quest_file, "--window", "20",
                 "--min-sup", "4", "--pfct", "0.5", "--json", "--stats"]
            )
            == 0
        )
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["window"] == 20
        assert payload["slides"] == 60
        assert payload["stats"]["slides_processed"] == 60
        assert "pmf_incremental_fraction" in payload["stats_report"]["derived"]

    def test_window_required(self, quest_file):
        with pytest.raises(SystemExit):
            main(["stream-mine", quest_file, "--min-sup", "4"])


class TestGenerateAndInspect:
    def test_generate_quest(self, tmp_path, capsys):
        output = tmp_path / "gen.utd"
        assert (
            main(
                ["generate", str(output), "--kind", "quest",
                 "--transactions", "30", "--items", "8", "--seed", "4"]
            )
            == 0
        )
        assert output.exists()
        assert "wrote 30 transactions" in capsys.readouterr().out

    def test_generate_mushroom(self, tmp_path):
        output = tmp_path / "mush.utd"
        assert (
            main(
                ["generate", str(output), "--kind", "mushroom",
                 "--transactions", "20", "--seed", "4"]
            )
            == 0
        )
        assert output.exists()

    def test_generate_then_mine(self, tmp_path, capsys):
        output = tmp_path / "gen.utd"
        main(["generate", str(output), "--transactions", "40", "--items", "6",
              "--avg-length", "3", "--avg-pattern", "2", "--seed", "4"])
        capsys.readouterr()
        assert main(["mine", str(output), "--min-sup-ratio", "0.2",
                     "--pfct", "0.5"]) == 0
        assert "probabilistic frequent closed itemsets" in capsys.readouterr().out

    def test_inspect(self, paper_file, capsys):
        assert main(["inspect", paper_file]) == 0
        output = capsys.readouterr().out
        assert "transactions" in output
        assert "4" in output


class TestConvertCommand:
    def test_text_to_columnar_and_back(self, paper_file, tmp_path, capsys):
        columnar = tmp_path / "paper.utdz"
        assert main(["convert", paper_file, str(columnar)]) == 0
        assert "wrote 4 transactions" in capsys.readouterr().out
        assert columnar.exists()
        round_trip = tmp_path / "round.utd"
        assert main(["convert", str(columnar), str(round_trip)]) == 0
        capsys.readouterr()
        # The converted file mines identically to the original text file.
        assert main(["mine", str(columnar), "--min-sup", "2",
                     "--pfct", "0.8"]) == 0
        assert "a b c d" in capsys.readouterr().out

    def test_inspect_columnar(self, paper_file, tmp_path, capsys):
        columnar = tmp_path / "paper.utdz"
        main(["convert", paper_file, str(columnar)])
        capsys.readouterr()
        assert main(["inspect", str(columnar)]) == 0
        assert "transactions" in capsys.readouterr().out

    def test_corrupt_columnar_reports_error(self, tmp_path, capsys):
        broken = tmp_path / "broken.utdz"
        broken.write_bytes(b"not a columnar file at all")
        assert main(["mine", str(broken), "--min-sup", "2"]) == 2
        assert "not a .utdz file" in capsys.readouterr().err

    def test_missing_input_reports_error(self, tmp_path, capsys):
        assert main(["convert", str(tmp_path / "nope.utd"),
                     str(tmp_path / "out.utdz")]) == 2
        assert capsys.readouterr().err


class TestExperimentsCommand:
    def test_runs_selected_tables(self, capsys):
        assert main(["experiments", "--scale", "ci", "--only", "table7"]) == 0
        assert "Table VII" in capsys.readouterr().out


class TestArgumentErrors:
    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestJsonAndMaxSize:
    def test_json_output(self, paper_file, capsys):
        import json

        assert main(["mine", paper_file, "--min-sup", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        itemsets = [tuple(r["itemset"]) for r in payload["results"]]
        assert itemsets == [("a", "b", "c"), ("a", "b", "c", "d")]
        assert payload["results"][0]["probability"] == pytest.approx(0.8754)

    def test_json_with_stats(self, paper_file, capsys):
        import json

        assert main(["mine", paper_file, "--min-sup", "2", "--json", "--stats"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stats"]["results_emitted"] == 2

    def test_max_size_caps_results(self, paper_file, capsys):
        import json

        assert (
            main(["mine", paper_file, "--min-sup", "2", "--pfct", "0.0",
                  "--json", "--max-size", "3"])
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["results"]
        assert all(len(r["itemset"]) <= 3 for r in payload["results"])


class TestVerifyFlag:
    def test_verify_passes_on_paper_example(self, paper_file, capsys):
        assert main(["mine", paper_file, "--min-sup", "2", "--verify"]) == 0
        assert "verification:" in capsys.readouterr().out

    def test_verify_works_with_sampled_framework(self, paper_file, capsys):
        assert (
            main(["mine", paper_file, "--min-sup", "2", "--framework", "naive",
                  "--verify"])
            == 0
        )
        assert "violations: none" in capsys.readouterr().out


class TestExperimentsExport:
    def test_export_writes_files(self, tmp_path, capsys):
        out = tmp_path / "reports"
        assert (
            main(["experiments", "--scale", "ci", "--only", "table7",
                  "--export", str(out), "--export-format", "csv"])
            == 0
        )
        files = list(out.glob("*.csv"))
        assert len(files) == 1
        assert "exported 1 report(s)" in capsys.readouterr().out
