"""Tests for the incremental PFCI monitor.

The load-bearing property is *exactness*: after every slide the maintained
result set must equal re-mining the window snapshot from scratch, field for
field, on deterministic checking paths.  The remaining tests pin the delta
semantics (old − removed + added == new), the slide-level work counters,
and the persistence of the shared support-DP cache across generations.
"""

import random

import pytest

from repro.core.config import MinerConfig
from repro.core.database import UncertainDatabase, UncertainTransaction
from repro.core.miner import MPFCIMiner
from repro.streaming import PFCIMonitor, WindowedUncertainDatabase

ITEMS = "abcdefgh"

# High exact_event_limit keeps every Pr_FC on a deterministic path (exact /
# bound / trivial); sampled estimates depend on shared-RNG consumption order
# and cannot be compared bit-for-bit between mining orders.
CONFIG = MinerConfig(min_sup=4, pfct=0.4, exact_event_limit=64)


def random_transaction(rng, number):
    size = rng.randint(1, 5)
    items = tuple(sorted(rng.sample(ITEMS, size)))
    return UncertainTransaction(f"T{number}", items, round(rng.uniform(0.05, 1.0), 3))


def result_key(result):
    return result.to_dict()


class TestExactness:
    def test_matches_scratch_mining_across_slides(self):
        """~120 slides on a 30-transaction window: the maintained PFCI set
        equals a from-scratch mine of every window, field for field."""
        rng = random.Random(7)
        monitor = PFCIMonitor(CONFIG, window=30)
        for number in range(120):
            monitor.slide(random_transaction(rng, number))
            scratch = MPFCIMiner(monitor.window.snapshot(), CONFIG).mine()
            assert [result_key(r) for r in monitor.results()] == [
                result_key(r) for r in scratch
            ], f"slide {number}"

    def test_bootstrap_of_prefilled_window(self):
        rng = random.Random(3)
        window = WindowedUncertainDatabase(capacity=20)
        for number in range(20):
            window.append(random_transaction(rng, number))
        monitor = PFCIMonitor(CONFIG, window)
        scratch = MPFCIMiner(window.snapshot(), CONFIG).mine()
        assert [result_key(r) for r in monitor.results()] == [
            result_key(r) for r in scratch
        ]

    def test_snapshot_agrees_with_plain_database(self):
        # Guard against the monitor quietly depending on snapshot fast-path
        # internals: scratch-mining an independently built database gives
        # the same results.
        rng = random.Random(11)
        monitor = PFCIMonitor(CONFIG, window=15)
        for number in range(40):
            monitor.slide(random_transaction(rng, number))
        scratch = MPFCIMiner(UncertainDatabase(list(monitor.window)), CONFIG).mine()
        assert [result_key(r) for r in monitor.results()] == [
            result_key(r) for r in scratch
        ]


class TestDeltas:
    def test_delta_coherence(self):
        """old − removed + added == new, and retained == old ∩ new."""
        rng = random.Random(5)
        monitor = PFCIMonitor(CONFIG, window=25)
        previous = set()
        for number in range(80):
            delta = monitor.slide(random_transaction(rng, number))
            current = {r.itemset for r in monitor.results()}
            added = {r.itemset for r in delta.added}
            removed = {r.itemset for r in delta.removed}
            retained = {r.itemset for r in delta.retained}
            assert added == current - previous
            assert removed == previous - current
            assert retained == previous & current
            assert delta.changed == bool(added or removed)
            assert delta.generation == monitor.generation
            previous = current

    def test_delta_ordering_and_summary(self):
        rng = random.Random(9)
        monitor = PFCIMonitor(CONFIG, window=25)
        for number in range(60):
            delta = monitor.slide(random_transaction(rng, number))
            for block in (delta.added, delta.removed, delta.retained):
                keys = [(len(r.itemset), r.itemset) for r in block]
                assert keys == sorted(keys)
            assert f"gen={delta.generation}" in delta.summary()


class TestCountersAndCache:
    def test_slide_counters(self):
        rng = random.Random(13)
        monitor = PFCIMonitor(CONFIG, window=25)
        for number in range(100):
            monitor.slide(random_transaction(rng, number))
        stats = monitor.stats
        assert stats.slides_processed == 100
        assert stats.pmf_incremental_updates > 0
        assert stats.pmf_full_rebuilds > 0
        assert stats.pmf_updates == (
            stats.pmf_incremental_updates + stats.pmf_full_rebuilds
        )
        assert 0.0 < stats.pmf_incremental_fraction < 1.0
        # Screening must be doing real work on this workload.
        assert stats.branches_retained > 0
        assert stats.branches_remined > 0
        report = monitor.stats.report()
        assert report["counters"]["slides_processed"] == 100
        assert "pmf_incremental_fraction" in report["derived"]

    def test_cache_persists_and_rebinds_across_generations(self):
        rng = random.Random(17)
        monitor = PFCIMonitor(CONFIG, window=25)
        for number in range(60):
            monitor.slide(random_transaction(rng, number))
        cache = monitor._cache
        assert cache is not None
        # One shared cache, rebound (and invalidated) per mined generation.
        assert cache.generation == monitor.window.generation
        assert monitor.stats.dp_generation_invalidations > 0
        assert (
            monitor.stats.dp_generation_invalidations
            == cache.generation_invalidations
        )
        # dp_* stats carry the cache's cumulative counters (copy semantics).
        assert monitor.stats.dp_cache_hits == cache.hits
        assert monitor.stats.dp_cache_misses == cache.misses

    def test_refresh_interval_forces_rebuilds(self):
        rng = random.Random(19)
        eager = PFCIMonitor(CONFIG, window=25, refresh_interval=1)
        for number in range(40):
            eager.slide(random_transaction(rng, number))
        # Every update is a forced full rebuild.
        assert eager.stats.pmf_incremental_updates == 0
        assert eager.stats.pmf_full_rebuilds > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            PFCIMonitor(CONFIG, window=10, refresh_interval=0)
        with pytest.raises(ValueError):
            PFCIMonitor(CONFIG, window=10, numeric_slack=-1.0)
        with pytest.raises(ValueError):
            PFCIMonitor(CONFIG, window=0)


class TestConvenienceAPI:
    def test_append_and_extend(self):
        monitor = PFCIMonitor(CONFIG, window=10)
        delta = monitor.append("T1", "ab", 0.9)
        assert delta.generation == 1
        rng = random.Random(23)
        deltas = monitor.extend(
            random_transaction(rng, number) for number in range(2, 8)
        )
        assert len(deltas) == 6
        assert len(monitor.window) == 7
        assert "PFCIMonitor" in repr(monitor)


class TestPMFStabilityFallback:
    def test_unstable_deconvolution_falls_back_to_full_rebuild(self, monkeypatch):
        """When eviction-time deconvolution raises PMFStabilityError, the
        monitor rebuilds the item's PMF from scratch: the state afterwards
        matches the from-scratch support DP to 1e-12 and the maintained
        result set stays exact."""
        import numpy as np

        import repro.streaming.monitor as monitor_module
        from repro.core.support import PMFStabilityError, support_pmf

        rng = random.Random(29)
        # refresh_interval large enough that no scheduled rebuild interferes
        # with the fault-driven one inside the probe slide.
        monitor = PFCIMonitor(CONFIG, window=20, refresh_interval=10**6)
        for number in range(25):  # past capacity: every slide now evicts
            monitor.slide(random_transaction(rng, number))

        real_pmf_remove = monitor_module.pmf_remove
        failures = []

        def flaky_pmf_remove(pmf, probability):
            if not failures:
                failures.append((np.asarray(pmf, dtype=float), probability))
                raise PMFStabilityError("injected: deconvolution unstable")
            return real_pmf_remove(pmf, probability)

        monkeypatch.setattr(monitor_module, "pmf_remove", flaky_pmf_remove)

        rebuilds_before = monitor.stats.pmf_full_rebuilds
        # All-items transaction: the eviction is guaranteed to touch some
        # tracked item, so the flaky deconvolution actually runs.
        monitor.slide(UncertainTransaction("PROBE", tuple(ITEMS), 0.7))
        assert failures, "eviction never reached pmf_remove"
        assert monitor.stats.pmf_full_rebuilds == rebuilds_before + 1

        # Every maintained per-item PMF — the rebuilt one included — matches
        # the from-scratch DP over the live window.
        for item, state in monitor._states.items():
            scratch = support_pmf(monitor.window.item_probabilities(item))
            assert state.pmf is not None
            assert len(state.pmf) == len(scratch)
            assert float(np.abs(np.asarray(state.pmf) - scratch).max()) <= 1e-12

        # And the result set is still exact against a from-scratch mine.
        scratch_results = MPFCIMiner(monitor.window.snapshot(), CONFIG).mine()
        assert [result_key(r) for r in monitor.results()] == [
            result_key(r) for r in scratch_results
        ]

        # Later slides keep using the incremental path (the fallback is
        # per-event, not a permanent downgrade).
        incremental_before = monitor.stats.pmf_incremental_updates
        for number in range(26, 30):
            monitor.slide(random_transaction(rng, number))
        assert monitor.stats.pmf_incremental_updates > incremental_before
