"""Shared fixtures, hypothesis strategies and brute-force oracles.

The oracles here are deliberately naive (exponential enumeration,
quadratic scans) — independent implementations the optimized library code is
checked against.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, List, Sequence, Tuple

import pytest
from hypothesis import strategies as st

from repro.core.database import UncertainDatabase
from repro.core.itemsets import Itemset, canonical

ITEM_POOL = "abcdef"


# ----------------------------------------------------------------------
# hypothesis strategies
# ----------------------------------------------------------------------
@st.composite
def exact_transactions(draw, max_transactions: int = 8, max_items: int = 5):
    """A small exact transaction database (list of item tuples)."""
    num_items = draw(st.integers(min_value=1, max_value=max_items))
    items = ITEM_POOL[:num_items]
    num_transactions = draw(st.integers(min_value=0, max_value=max_transactions))
    transactions = []
    for _ in range(num_transactions):
        size = draw(st.integers(min_value=1, max_value=num_items))
        chosen = draw(
            st.lists(
                st.sampled_from(items), min_size=size, max_size=size, unique=True
            )
        )
        transactions.append(canonical(chosen))
    return transactions


@st.composite
def uncertain_databases(
    draw,
    min_transactions: int = 1,
    max_transactions: int = 8,
    max_items: int = 5,
    allow_certain: bool = True,
):
    """A small uncertain database suitable for possible-world oracles."""
    num_items = draw(st.integers(min_value=1, max_value=max_items))
    items = ITEM_POOL[:num_items]
    num_transactions = draw(
        st.integers(min_value=min_transactions, max_value=max_transactions)
    )
    rows = []
    upper = 1.0 if allow_certain else 0.95
    for index in range(num_transactions):
        size = draw(st.integers(min_value=1, max_value=num_items))
        chosen = draw(
            st.lists(
                st.sampled_from(items), min_size=size, max_size=size, unique=True
            )
        )
        probability = draw(
            st.floats(min_value=0.05, max_value=upper, allow_nan=False)
        )
        rows.append((f"T{index}", canonical(chosen), round(probability, 3)))
    return UncertainDatabase.from_rows(rows)


@st.composite
def probability_lists(draw, max_size: int = 10):
    return draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=0,
            max_size=max_size,
        )
    )


# ----------------------------------------------------------------------
# brute-force oracles
# ----------------------------------------------------------------------
def brute_force_frequent(
    transactions: Sequence[Sequence], min_sup: int
) -> List[Tuple[Itemset, int]]:
    """Every frequent itemset by direct enumeration over the item universe."""
    items = sorted({item for transaction in transactions for item in transaction})
    results = []
    for size in range(1, len(items) + 1):
        for combo in itertools.combinations(items, size):
            support = sum(
                1 for transaction in transactions if set(combo) <= set(transaction)
            )
            if support >= min_sup:
                results.append((combo, support))
    return sorted(results, key=lambda pair: (len(pair[0]), pair[0]))


def brute_force_closed(
    transactions: Sequence[Sequence], min_sup: int
) -> List[Tuple[Itemset, int]]:
    """Frequent closed itemsets: frequent, and no superset ties the support."""
    frequent = brute_force_frequent(transactions, min_sup)
    supports: Dict[Itemset, int] = dict(frequent)
    closed = []
    items = sorted({item for transaction in transactions for item in transaction})
    for itemset, support in frequent:
        is_closed = True
        for extra in items:
            if extra in itemset:
                continue
            superset = canonical(itemset + (extra,))
            superset_support = sum(
                1 for transaction in transactions if set(superset) <= set(transaction)
            )
            if superset_support == support:
                is_closed = False
                break
        if is_closed:
            closed.append((itemset, support))
    return closed


def brute_force_frequent_probability(
    database: UncertainDatabase, itemset, min_sup: int
) -> float:
    """Pr_F by summing the PMF computed from explicit subset enumeration."""
    probabilities = database.tidset_probabilities(database.tidset(itemset))
    total = 0.0
    for mask in range(1 << len(probabilities)):
        count = 0
        weight = 1.0
        for position, probability in enumerate(probabilities):
            if mask >> position & 1:
                count += 1
                weight *= probability
            else:
                weight *= 1.0 - probability
        if count >= min_sup:
            total += weight
    return total


# ----------------------------------------------------------------------
# fixtures
# ----------------------------------------------------------------------
@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)


@pytest.fixture
def paper_db() -> UncertainDatabase:
    from repro.core.database import paper_table2_database

    return paper_table2_database()
