"""Shared fixtures, strategy re-exports, and brute-force oracles.

The hypothesis strategies live in :mod:`tests.strategies` (one package for
every suite); they are re-exported here so the historical
``from tests.conftest import uncertain_databases`` imports keep working.
The oracles here are deliberately naive (exponential enumeration,
quadratic scans) — independent implementations the optimized library code is
checked against.

Importing this module also registers and loads the hypothesis settings
profile named by ``REPRO_HYPOTHESIS_PROFILE`` (``dev`` / ``ci`` /
``nightly``, default ``dev``).
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, List, Sequence, Tuple

import pytest

from repro.core.database import UncertainDatabase
from repro.core.itemsets import Itemset, canonical
from tests.strategies import (
    ITEM_POOL,
    exact_transactions,
    item_uncertain_databases,
    load_profile_from_env,
    probability_lists,
    probability_vectors,
    uncertain_databases,
)

__all__ = [
    "ITEM_POOL",
    "brute_force_closed",
    "brute_force_frequent",
    "brute_force_frequent_probability",
    "exact_transactions",
    "item_uncertain_databases",
    "probability_lists",
    "probability_vectors",
    "uncertain_databases",
]

HYPOTHESIS_PROFILE = load_profile_from_env()


# ----------------------------------------------------------------------
# brute-force oracles
# ----------------------------------------------------------------------
def brute_force_frequent(
    transactions: Sequence[Sequence], min_sup: int
) -> List[Tuple[Itemset, int]]:
    """Every frequent itemset by direct enumeration over the item universe."""
    items = sorted({item for transaction in transactions for item in transaction})
    results = []
    for size in range(1, len(items) + 1):
        for combo in itertools.combinations(items, size):
            support = sum(
                1 for transaction in transactions if set(combo) <= set(transaction)
            )
            if support >= min_sup:
                results.append((combo, support))
    return sorted(results, key=lambda pair: (len(pair[0]), pair[0]))


def brute_force_closed(
    transactions: Sequence[Sequence], min_sup: int
) -> List[Tuple[Itemset, int]]:
    """Frequent closed itemsets: frequent, and no superset ties the support."""
    frequent = brute_force_frequent(transactions, min_sup)
    supports: Dict[Itemset, int] = dict(frequent)
    closed = []
    items = sorted({item for transaction in transactions for item in transaction})
    for itemset, support in frequent:
        is_closed = True
        for extra in items:
            if extra in itemset:
                continue
            superset = canonical(itemset + (extra,))
            superset_support = sum(
                1 for transaction in transactions if set(superset) <= set(transaction)
            )
            if superset_support == support:
                is_closed = False
                break
        if is_closed:
            closed.append((itemset, support))
    return closed


def brute_force_frequent_probability(
    database: UncertainDatabase, itemset, min_sup: int
) -> float:
    """Pr_F by summing the PMF computed from explicit subset enumeration."""
    probabilities = database.tidset_probabilities(database.tidset(itemset))
    total = 0.0
    for mask in range(1 << len(probabilities)):
        count = 0
        weight = 1.0
        for position, probability in enumerate(probabilities):
            if mask >> position & 1:
                count += 1
                weight *= probability
            else:
                weight *= 1.0 - probability
        if count >= min_sup:
            total += weight
    return total


# ----------------------------------------------------------------------
# fixtures
# ----------------------------------------------------------------------
@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)


@pytest.fixture
def paper_db() -> UncertainDatabase:
    from repro.core.database import paper_table2_database

    return paper_table2_database()
