"""Tests for the prolint static analyzer (repro.analysis).

Two layers: the fixture corpus under ``tests/analysis_fixtures/`` (every
``bad_*.py`` must fire exactly its rule, every ``good_*.py`` must stay
silent), and the clean-tree gate — ``repro-lint src/repro`` exits 0 on the
repository itself.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    RULES,
    Severity,
    all_rule_names,
    analyze_paths,
    analyze_source,
)
from repro.analysis.cli import main as lint_main
from repro.analysis.suppressions import parse_module_override, parse_suppressions

FIXTURE_ROOT = Path(__file__).parent / "analysis_fixtures"
SRC_REPRO = Path(__file__).resolve().parents[1] / "src" / "repro"

RULE_DIRECTORIES = {
    "PROB-RANGE": "prob_range",
    "FSUM-REDUCE": "fsum_reduce",
    "BACKEND-SEAL": "backend_seal",
    "CACHE-PURE": "cache_pure",
    "DETERMINISM": "determinism",
    "REGISTRY-SEAL": "registry_seal",
    "RUNTIME-PICKLE": "runtime_pickle",
}


def fixture_cases():
    for rule_name, directory in sorted(RULE_DIRECTORIES.items()):
        for path in sorted((FIXTURE_ROOT / directory).glob("*.py")):
            yield pytest.param(rule_name, path, id=f"{rule_name}:{path.name}")


class TestFixtureCorpus:
    def test_every_rule_has_fixture_coverage(self):
        assert set(RULE_DIRECTORIES) == set(all_rule_names())
        for rule_name, directory in RULE_DIRECTORIES.items():
            names = [path.name for path in (FIXTURE_ROOT / directory).glob("*.py")]
            assert any(name.startswith("bad_") for name in names), rule_name
            assert any(name.startswith("good_") for name in names), rule_name

    @pytest.mark.parametrize("rule_name,path", list(fixture_cases()))
    def test_fixture(self, rule_name, path):
        report = analyze_paths([path], rule_names=[rule_name])
        active = report.active
        if path.name.startswith("bad_"):
            assert active, f"{rule_name} did not fire on {path.name}"
            assert {diagnostic.rule for diagnostic in active} == {rule_name}
            assert all(diagnostic.line > 0 for diagnostic in active)
        else:
            assert not active, [diagnostic.format() for diagnostic in active]


class TestCleanTreeGate:
    def test_repro_lint_over_src_repro_exits_zero(self):
        report = analyze_paths([SRC_REPRO])
        assert report.files_scanned > 50
        assert report.exit_code() == 0, "\n".join(
            diagnostic.format() for diagnostic in report.active
        )

    def test_known_suppressions_are_counted_not_hidden(self):
        # The tree carries a handful of justified suppressions (DP transitions
        # in core/support.py, prefix sums in core/approx.py); the report must
        # still surface them as suppressed diagnostics.
        report = analyze_paths([SRC_REPRO])
        assert len(report.suppressed) >= 4
        assert all(diagnostic.rule == "FSUM-REDUCE" for diagnostic in report.suppressed)


class TestSuppressions:
    def test_inline_suppression_silences_same_line(self):
        source = (
            "def f(probabilities):\n"
            "    return sum(probabilities)  # prolint: ignore[FSUM-REDUCE] why\n"
        )
        diagnostics = analyze_source(
            source, module="repro.core.fake", rule_names=["FSUM-REDUCE"]
        )
        assert len(diagnostics) == 1
        assert diagnostics[0].suppressed

    def test_standalone_suppression_covers_next_line(self):
        source = (
            "def f(probabilities):\n"
            "    # prolint: ignore[FSUM-REDUCE] justification\n"
            "    return sum(probabilities)\n"
        )
        diagnostics = analyze_source(
            source, module="repro.core.fake", rule_names=["FSUM-REDUCE"]
        )
        assert [diagnostic.suppressed for diagnostic in diagnostics] == [True]

    def test_unrelated_rule_name_does_not_suppress(self):
        source = (
            "def f(probabilities):\n"
            "    return sum(probabilities)  # prolint: ignore[DETERMINISM]\n"
        )
        diagnostics = analyze_source(
            source, module="repro.core.fake", rule_names=["FSUM-REDUCE"]
        )
        assert [diagnostic.suppressed for diagnostic in diagnostics] == [False]

    def test_parse_helpers(self):
        lines = (
            "x = 1  # prolint: ignore[A-RULE, B-RULE]",
            "# prolint: module=repro.core.fake",
        )
        suppressions = parse_suppressions(lines)
        assert suppressions[1] == frozenset({"A-RULE", "B-RULE"})
        assert parse_module_override(lines) == "repro.core.fake"


class TestReportShape:
    def test_report_matches_miningstats_layout(self):
        report = analyze_paths([FIXTURE_ROOT / "fsum_reduce"])
        payload = report.report()
        assert set(payload) == {"counters", "derived", "rules_run", "diagnostics"}
        assert set(payload["counters"]) == {
            "files_scanned", "diagnostics", "suppressed",
        }
        assert set(payload["derived"]) == {"by_rule", "by_severity"}
        assert payload["counters"]["diagnostics"] == len(report.active)
        json.dumps(payload)  # must be JSON-serializable as-is

    def test_severity_parse(self):
        assert Severity.parse("error") is Severity.ERROR
        with pytest.raises(ValueError):
            Severity.parse("fatal")

    def test_unknown_rule_selection_raises(self):
        with pytest.raises(ValueError):
            analyze_paths([FIXTURE_ROOT], rule_names=["NO-SUCH-RULE"])

    def test_rule_catalog_metadata(self):
        for name, rule_class in RULES.items():
            assert rule_class.description, name
            assert rule_class.invariant, name
            assert rule_class.severity is Severity.ERROR


class TestCli:
    def test_cli_clean_tree_exit_zero(self, capsys):
        code = lint_main([str(SRC_REPRO)])
        captured = capsys.readouterr()
        assert code == 0
        assert "prolint:" in captured.out

    def test_cli_bad_fixture_exit_one(self, capsys):
        bad = FIXTURE_ROOT / "determinism" / "bad_global_rng.py"
        code = lint_main([str(bad)])
        captured = capsys.readouterr()
        assert code == 1
        assert "DETERMINISM" in captured.out

    def test_cli_json_output(self, capsys):
        bad = FIXTURE_ROOT / "fsum_reduce" / "bad_plain_sum.py"
        code = lint_main([str(bad), "--json", "--select", "FSUM-REDUCE"])
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert code == 1
        assert payload["counters"]["diagnostics"] == 1
        assert payload["derived"]["by_rule"]["FSUM-REDUCE"] == 1

    def test_cli_list_rules(self, capsys):
        code = lint_main(["--list-rules"])
        captured = capsys.readouterr()
        assert code == 0
        for name in all_rule_names():
            assert name in captured.out

    def test_cli_module_entry_point(self):
        import os
        import subprocess
        import sys

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(SRC_REPRO.parent)]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--list-rules"],
            capture_output=True,
            text=True,
            cwd=str(SRC_REPRO.parents[1]),
            env=env,
        )
        assert result.returncode == 0
        assert "FSUM-REDUCE" in result.stdout
