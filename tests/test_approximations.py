"""Tests for the closed-form frequent-probability approximations."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.approximations import (
    normal_frequent_probability,
    poisson_frequent_probability,
    poisson_tail_error_bound,
)
from repro.core.support import frequent_probability
from tests.conftest import probability_lists


class TestDegenerateCases:
    @pytest.mark.parametrize(
        "approx", [normal_frequent_probability, poisson_frequent_probability]
    )
    def test_min_sup_zero(self, approx):
        assert approx([0.5, 0.5], 0) == 1.0

    @pytest.mark.parametrize(
        "approx", [normal_frequent_probability, poisson_frequent_probability]
    )
    def test_impossible_threshold(self, approx):
        assert approx([0.5], 2) == 0.0

    def test_normal_with_deterministic_support(self):
        assert normal_frequent_probability([1.0, 1.0], 2) == 1.0
        assert normal_frequent_probability([1.0], 1) == 1.0

    def test_poisson_with_zero_mean(self):
        # All-zero probabilities have zero expected support.
        assert poisson_frequent_probability([0.0, 0.0], 1) == 0.0


class TestAccuracy:
    def test_normal_accurate_for_large_balanced_sums(self):
        rng = random.Random(0)
        probabilities = [rng.uniform(0.3, 0.7) for _ in range(300)]
        for min_sup in (100, 150, 180):
            exact = frequent_probability(probabilities, min_sup)
            approx = normal_frequent_probability(probabilities, min_sup)
            assert approx == pytest.approx(exact, abs=0.02)

    def test_poisson_accurate_for_small_probabilities(self):
        rng = random.Random(1)
        probabilities = [rng.uniform(0.001, 0.05) for _ in range(400)]
        for min_sup in (2, 8, 15):
            exact = frequent_probability(probabilities, min_sup)
            approx = poisson_frequent_probability(probabilities, min_sup)
            bound = poisson_tail_error_bound(probabilities)
            assert abs(approx - exact) <= bound + 1e-9

    @given(probability_lists(max_size=8), st.integers(min_value=1, max_value=9))
    @settings(max_examples=60, deadline=None)
    def test_poisson_error_is_certified(self, probabilities, min_sup):
        """Le Cam's theorem: |approx - exact| <= 2 sum p_i^2, always."""
        exact = frequent_probability(probabilities, min_sup)
        approx = poisson_frequent_probability(probabilities, min_sup)
        assert abs(approx - exact) <= poisson_tail_error_bound(probabilities) + 1e-9

    @given(probability_lists(max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_both_estimates_are_probabilities(self, probabilities):
        for min_sup in range(len(probabilities) + 2):
            for approx in (normal_frequent_probability, poisson_frequent_probability):
                value = approx(probabilities, min_sup)
                assert 0.0 <= value <= 1.0

    @given(probability_lists(max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_min_sup(self, probabilities):
        for approx in (normal_frequent_probability, poisson_frequent_probability):
            values = [
                approx(probabilities, min_sup)
                for min_sup in range(len(probabilities) + 1)
            ]
            assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))


class TestErrorBound:
    def test_zero_for_empty(self):
        assert poisson_tail_error_bound([]) == 0.0

    def test_capped_at_one(self):
        assert poisson_tail_error_bound([1.0] * 10) == 1.0

    def test_formula(self):
        assert poisson_tail_error_bound([0.1, 0.2]) == pytest.approx(
            2 * (0.01 + 0.04)
        )
