"""Supplementary coverage: statistics accounting and config corner cases."""


from repro.core.config import MinerConfig
from repro.core.database import paper_table2_database
from repro.core.miner import MPFCIMiner
from repro.core.stats import MinerStatistics


class TestStatisticsAccounting:
    def test_fcp_evaluations_property(self):
        stats = MinerStatistics(fcp_exact_evaluations=3, fcp_sampled_evaluations=2)
        assert stats.fcp_evaluations == 5

    def test_as_dict_round_trip(self):
        stats = MinerStatistics(nodes_visited=7)
        payload = stats.as_dict()
        assert payload["nodes_visited"] == 7
        assert set(payload) == set(MinerStatistics.__dataclass_fields__)

    def test_merge_accumulates_every_field(self):
        first = MinerStatistics()
        second = MinerStatistics(
            **{name: 1 for name in MinerStatistics.__dataclass_fields__}
        )
        first.merge(second)
        assert all(
            getattr(first, name) == 1
            for name in MinerStatistics.__dataclass_fields__
        )

    def test_candidate_accounting_on_paper_example(self):
        db = paper_table2_database()
        miner = MPFCIMiner(db, MinerConfig(min_sup=2, pfct=0.8))
        miner.mine()
        stats = miner.stats
        # Every generated candidate is either pruned or visited as a node.
        assert stats.candidates_generated >= stats.nodes_visited - len(
            miner._candidate_items()
        )
        assert stats.results_emitted <= stats.nodes_visited


class TestConfigDescribe:
    def test_default_describe_has_no_disabled_suffix(self):
        text = MinerConfig(min_sup=3).describe()
        assert "min_sup=3" in text
        assert "-CH" not in text

    def test_all_disabled(self):
        config = MinerConfig(
            min_sup=1,
            use_chernoff_pruning=False,
            use_superset_pruning=False,
            use_subset_pruning=False,
            use_probability_bounds=False,
        )
        text = config.describe()
        for tag in ("CH", "Super", "Sub", "PB"):
            assert tag in text

    def test_seed_none_is_allowed(self):
        db = paper_table2_database()
        config = MinerConfig(min_sup=2, pfct=0.8, seed=None)
        results = MPFCIMiner(db, config).mine()
        assert len(results) == 2
